"""Chaos tests: deterministic fault injection against the serving stack.

Every test here activates one or more named fault points from
``repro.service.faults`` and asserts the *recovery* behaviour the
robustness work promises: deadlines degrade instead of hanging, overload
sheds with 503 instead of queueing forever, dead/hung workers cost only
their own form, stalled clients get reclaimed, and a draining server
finishes in-flight work while refusing new work.
"""

import json
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service import (
    AssignmentSession,
    GradeError,
    grade_batch,
    make_server,
)
from repro.service.deadline import Deadline, DeadlineExceeded
from repro.service.faults import (
    FAULTS,
    FaultRegistry,
    stalled_client_socket,
)
from repro.service.server import AdmissionController, CacheSpiller

TARGET = "SELECT beer FROM Serves WHERE price > 2"
WRONG = "SELECT beer FROM Serves WHERE price >= 2"


@pytest.fixture(autouse=True)
def _clean_faults():
    """Every test leaves the process-wide registry empty."""
    FAULTS.clear()
    yield
    FAULTS.clear()


def _post(base, path, payload, timeout=30):
    request = urllib.request.Request(
        base + path,
        json.dumps(payload).encode(),
        {"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def _start_server(**kwargs):
    server = make_server(port=0, **kwargs)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, f"http://{host}:{port}"


def _create_assignment(base, **extra):
    schema = {
        "Serves": [["bar", "STRING"], ["beer", "STRING"], ["price", "FLOAT"]]
    }
    status, body, _ = _post(
        base, "/assignments", {"schema": schema, "target_sql": TARGET, **extra}
    )
    assert status == 201
    return body["assignment_id"]


class TestFaultRegistry:
    def test_env_spec_parses_points_and_params(self):
        registry = FaultRegistry()
        registry.clear()
        registry.load_env("batch.worker:mode=exit,n=2; solver.slow:ms=50")
        worker = registry.active("batch.worker")
        assert worker is not None
        assert worker.params == {"mode": "exit", "n": "2"}
        slow = registry.active("solver.slow")
        assert slow is not None and slow.float_param("ms") == 50.0

    def test_nth_hit_fires_exactly_once(self):
        registry = FaultRegistry()
        registry.clear()
        registry.activate("p", n=3)
        point = registry.active("p")
        assert [point.should_fire() for _ in range(5)] == [
            False, False, True, False, False,
        ]

    def test_match_fires_only_on_payload_substring(self):
        registry = FaultRegistry()
        registry.clear()
        registry.activate("p", match="price > 7")
        point = registry.active("p")
        assert not point.should_fire("SELECT beer FROM Serves")
        assert point.should_fire("SELECT beer FROM Serves WHERE price > 7")
        assert not point.should_fire(None)

    def test_deactivate_and_clear_disable_the_registry(self):
        registry = FaultRegistry()
        registry.clear()
        registry.activate("a")
        registry.activate("b")
        registry.deactivate("a")
        assert registry.enabled and registry.active("a") is None
        registry.clear()
        assert not registry.enabled and registry.active("b") is None

    def test_hooks_are_noops_when_inactive(self):
        registry = FaultRegistry()
        registry.clear()
        registry.sleep("nope")
        registry.raise_io("nope")
        registry.on_task("nope", payload="x")  # must not exit the process

    def test_raise_io_raises_oserror(self):
        registry = FaultRegistry()
        registry.clear()
        registry.activate("spill.io")
        with pytest.raises(OSError, match="injected fault"):
            registry.raise_io("spill.io")


class TestDeadline:
    def test_fresh_budget_is_not_expired(self):
        deadline = Deadline.after_ms(60_000)
        assert not deadline.expired()
        assert 0 < deadline.remaining_ms() <= 60_000
        deadline.check("anywhere")  # must not raise

    def test_expired_budget_raises_with_location(self):
        deadline = Deadline.after_ms(0.0)
        time.sleep(0.001)
        assert deadline.expired() and deadline.remaining_ms() == 0
        with pytest.raises(DeadlineExceeded, match="solver"):
            deadline.check("solver")


class TestDeadlineDegradation:
    def test_tiny_budget_degrades_instead_of_hanging(self, beers_catalog):
        # Each DPLL(T) round sleeps 30ms, so a 10ms budget must expire
        # inside the pipeline -- the grade returns a partial report with
        # a coarse stage hint instead of blocking for the full run.
        FAULTS.activate("solver.slow", ms=30)
        session = AssignmentSession(beers_catalog, TARGET)
        result = session.grade(WRONG, deadline=Deadline.after_ms(10))
        assert result.degraded
        body = result.to_dict()
        assert body["degraded"] is True
        degraded = [
            (stage["stage"], hint)
            for stage in body["stages"]
            for hint in stage["hints"]
            if hint["kind"] == "degraded"
        ]
        assert len(degraded) == 1
        stage, hint = degraded[0]
        assert "time budget" in hint["message"]
        assert stage in ("FROM", "WHERE", "GROUP BY", "HAVING", "SELECT")

    def test_degraded_results_are_never_cached(self, beers_catalog):
        FAULTS.activate("solver.slow", ms=30)
        session = AssignmentSession(beers_catalog, TARGET)
        first = session.grade(WRONG, deadline=Deadline.after_ms(10))
        assert first.degraded and not first.cached
        # Same form with a sane budget: a full (exact) grade, not the
        # degraded partial replayed from the cache.
        FAULTS.clear()
        second = session.grade(WRONG)
        assert not second.degraded and not second.cached
        assert not second.all_passed
        third = session.grade(WRONG)
        assert third.cached and not third.degraded

    def test_no_fault_no_deadline_is_byte_identical(self, beers_catalog):
        # The degradation plumbing must be invisible on the common path.
        plain = AssignmentSession(beers_catalog, TARGET).grade(WRONG)
        wired = AssignmentSession(beers_catalog, TARGET).grade(
            WRONG, deadline=None
        )
        first, second = plain.to_dict(), wired.to_dict()
        for body in (first, second):  # wall time is inherently unstable
            body.pop("elapsed", None)
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )
        assert "degraded" not in first


class TestHttpDeadline:
    def test_timeout_ms_degrades_with_200(self):
        FAULTS.activate("solver.slow", ms=30)
        server, base = _start_server()
        try:
            aid = _create_assignment(base)
            status, body, _ = _post(
                base,
                "/grade",
                {"assignment_id": aid, "sql": WRONG, "timeout_ms": 10},
            )
            assert status == 200
            assert body["degraded"] is True
            assert any(
                hint["kind"] == "degraded"
                for stage in body["stages"]
                for hint in stage["hints"]
            )
        finally:
            server.shutdown()
            server.server_close()

    def test_pre_expired_budget_is_408(self):
        # A microscopic budget expires before the pipeline starts; the
        # request fails fast with 408 instead of doing throwaway work.
        server, base = _start_server()
        try:
            aid = _create_assignment(base)
            status, body, _ = _post(
                base,
                "/grade",
                {"assignment_id": aid, "sql": WRONG, "timeout_ms": 0.001},
            )
            assert status == 408
            assert body["kind"] == "DeadlineExceeded"
        finally:
            server.shutdown()
            server.server_close()

    def test_timeout_ms_validation(self):
        server, base = _start_server()
        try:
            aid = _create_assignment(base)
            for bad in (-5, 0, "soon"):
                status, body, _ = _post(
                    base,
                    "/grade",
                    {"assignment_id": aid, "sql": WRONG, "timeout_ms": bad},
                )
                assert status == 400, bad
                assert "timeout_ms" in body["error"]
        finally:
            server.shutdown()
            server.server_close()

    def test_server_cap_bounds_client_budget(self):
        # max_timeout_ms both caps explicit budgets and applies as the
        # default -- with a 1ms cap and a slowed solver every grade
        # degrades, even when the client asked for a huge budget.
        FAULTS.activate("solver.slow", ms=30)
        server, base = _start_server(max_timeout_ms=1.0)
        try:
            aid = _create_assignment(base)
            status, body, _ = _post(
                base,
                "/grade",
                {"assignment_id": aid, "sql": WRONG, "timeout_ms": 600_000},
            )
            assert status == 200 and body.get("degraded") is True
            status, body, _ = _post(
                base, "/grade", {"assignment_id": aid, "sql": TARGET}
            )
            assert status == 200 and body.get("degraded") is True
        finally:
            server.shutdown()
            server.server_close()


class TestAdmissionControl:
    def test_acquire_release_accounting(self):
        admission = AdmissionController(max_inflight=2, max_queue=0)
        assert admission.acquire() == "admitted"
        assert admission.acquire() == "admitted"
        assert admission.acquire() == "queue_full"
        admission.release()
        assert admission.acquire() == "admitted"
        stats = admission.stats()
        assert stats["inflight"] == 2 and stats["admitted"] == 3
        assert stats["shed"]["queue_full"] == 1

    def test_queue_timeout_sheds_after_waiting(self):
        admission = AdmissionController(
            max_inflight=1, max_queue=1, queue_timeout=0.05
        )
        assert admission.acquire() == "admitted"
        started = time.monotonic()
        assert admission.acquire() == "timeout"
        assert time.monotonic() - started >= 0.05
        assert admission.stats()["shed"]["timeout"] == 1

    def test_draining_refuses_everything(self):
        admission = AdmissionController(max_inflight=4)
        assert admission.acquire() == "admitted"
        admission.start_drain()
        assert admission.acquire() == "draining"
        assert not admission.wait_idle(0.05)  # one request still in flight
        admission.release()
        assert admission.wait_idle(1.0)

    def test_overload_sheds_503_with_retry_after(self):
        # One slot, no queue, and a solver slowed to ~1s per grade: the
        # second concurrent request must be shed immediately with 503.
        FAULTS.activate("solver.slow", ms=400)
        server, base = _start_server(
            admission=AdmissionController(max_inflight=1, max_queue=0)
        )
        try:
            aid = _create_assignment(base)
            with ThreadPoolExecutor(max_workers=2) as pool:
                slow = pool.submit(
                    _post, base, "/grade", {"assignment_id": aid, "sql": WRONG}
                )
                # Wait until the slow grade holds the only slot (the
                # assignment POST was admission #1, so the slow grade is
                # #2 -- inflight alone could still be the assignment's
                # not-yet-released slot), then a probe must be shed
                # immediately instead of queueing.
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    stats = server.admission.stats()
                    if stats["admitted"] >= 2 and stats["inflight"] >= 1:
                        break
                    time.sleep(0.01)
                stats = server.admission.stats()
                assert stats["admitted"] >= 2 and stats["inflight"] == 1
                status, body, headers = _post(
                    base, "/grade", {"assignment_id": aid, "sql": TARGET}
                )
                assert status == 503
                assert body["reason"] == "queue_full"
                assert headers.get("Retry-After") == "1"
                status, body, _ = slow.result(timeout=30)
                assert status == 200  # admitted work is unaffected
            stats = server.admission.stats()
            assert stats["shed"]["queue_full"] >= 1
        finally:
            server.shutdown()
            server.server_close()

    def test_stats_exposes_admission_block(self):
        server, base = _start_server(
            admission=AdmissionController(max_inflight=3, max_queue=2)
        )
        try:
            with urllib.request.urlopen(base + "/stats") as resp:
                stats = json.loads(resp.read())
            assert stats["admission"]["max_inflight"] == 3
            assert stats["admission"]["max_queue"] == 2
            assert stats["admission"]["draining"] is False
        finally:
            server.shutdown()
            server.server_close()


class TestStalledClient:
    def test_read_timeout_recovers_handler_thread(self):
        # The client declares a body then never sends it; the server's
        # read timeout must answer 408 (or close) instead of pinning the
        # handler thread forever.
        server, base = _start_server(read_timeout=0.3)
        host, port = server.server_address[:2]
        try:
            sock = stalled_client_socket(host, port, "/grade")
            try:
                sock.settimeout(10)
                data = b""
                while b"\r\n\r\n" not in data:
                    chunk = sock.recv(4096)
                    if not chunk:
                        break
                    data += chunk
            finally:
                sock.close()
            assert b"408" in data.split(b"\r\n", 1)[0]
            # The server is still healthy for well-behaved clients.
            with urllib.request.urlopen(base + "/healthz", timeout=5) as resp:
                assert resp.status == 200
        finally:
            server.shutdown()
            server.server_close()


class TestGracefulDrain:
    def test_drain_finishes_inflight_and_refuses_new(self):
        # Start one slow grade, then drain concurrently: the in-flight
        # request must complete with a full 200 while requests arriving
        # during the drain are shed with 503 "draining".
        FAULTS.activate("solver.slow", ms=200)
        server, base = _start_server()
        try:
            aid = _create_assignment(base)
            with ThreadPoolExecutor(max_workers=2) as pool:
                slow = pool.submit(
                    _post, base, "/grade", {"assignment_id": aid, "sql": WRONG}
                )
                # Wait until the slow grade is actually admitted (it
                # is admission #2; the assignment POST was #1 and its
                # slot release can lag the client-visible response).
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    stats = server.admission.stats()
                    if stats["admitted"] >= 2 and stats["inflight"] >= 1:
                        break
                    time.sleep(0.01)
                stats = server.admission.stats()
                assert stats["admitted"] >= 2 and stats["inflight"] == 1
                # Refusals begin the moment draining starts -- probe while
                # the accept loop is still up (drain() then stops it).
                server.admission.start_drain()
                status, body, headers = _post(
                    base, "/grade", {"assignment_id": aid, "sql": TARGET}
                )
                assert status == 503 and body["reason"] == "draining"
                assert headers.get("Retry-After") == "5"
                drained = server.drain(30.0)
                status, body, _ = slow.result(timeout=30)
                assert status == 200 and not body["all_passed"]
                assert drained is True
        finally:
            server.server_close()


class TestWorkerRecovery:
    def _pool(self):
        # Distinct constants -> distinct canonical forms, so the batch
        # takes the pool path and fault matching can single out one form.
        return [
            f"SELECT beer FROM Serves WHERE price > {i}" for i in range(6)
        ]

    def test_crashed_worker_costs_only_its_round(self, beers_catalog):
        # The 2nd task of one worker process hard-exits (like a segfault).
        # The pile must still fully grade: the leftover forms re-run on
        # fresh single-task workers, where an "n=2" trigger never fires.
        FAULTS.activate("batch.worker", mode="exit", n=2)
        batch = grade_batch(
            beers_catalog, TARGET, self._pool(), processes=2
        )
        assert batch.errors == 0
        assert all(not isinstance(r, GradeError) for r in batch.results)
        assert batch.recoveries["crashes"] >= 1
        assert batch.recoveries["retried_ok"] >= 1
        assert batch.recoveries["gave_up"] == 0

    def test_persistently_crashing_form_becomes_grade_error(
        self, beers_catalog
    ):
        # A match trigger fires on every attempt, including the isolated
        # retries -- that one form must give up with a WorkerCrashError
        # while every other form still grades.
        FAULTS.activate("batch.worker", mode="exit", match="> 4")
        batch = grade_batch(
            beers_catalog,
            TARGET,
            self._pool(),
            processes=2,
            max_retries=1,
        )
        assert batch.errors == 1
        failures = [r for r in batch.results if isinstance(r, GradeError)]
        assert len(failures) == 1
        assert failures[0].kind == "WorkerCrashError"
        assert "> 4" in failures[0].submission_sql
        assert batch.recoveries["gave_up"] == 1
        ok = [r for r in batch.results if not isinstance(r, GradeError)]
        assert len(ok) == 5

    def test_hung_worker_detected_by_task_timeout(self, beers_catalog):
        FAULTS.activate("batch.worker", mode="hang", match="> 4", hang_s=60)
        started = time.monotonic()
        batch = grade_batch(
            beers_catalog,
            TARGET,
            self._pool(),
            processes=2,
            task_timeout=1.0,
            max_retries=1,
        )
        elapsed = time.monotonic() - started
        assert elapsed < 30  # never waits out the 60s hang
        assert batch.recoveries["hangs"] >= 1
        failures = [r for r in batch.results if isinstance(r, GradeError)]
        assert len(failures) == 1
        assert failures[0].kind == "WorkerTimeoutError"
        assert "hung" in failures[0].error
        ok = [r for r in batch.results if not isinstance(r, GradeError)]
        assert len(ok) == 5

    def test_grade_error_detail_carries_traceback_frame(self, beers_catalog):
        # Regression: worker-side failures used to surface only str(exc);
        # the innermost traceback frame now rides along for debugging.
        unrepairable = "SELECT beer FROM Serves WHERE price < 1 OR bar = 'x'"
        batch = grade_batch(
            beers_catalog,
            TARGET,
            [unrepairable],
            processes=1,
            max_sites=0,
        )
        assert batch.errors == 1
        error = batch.results[0]
        assert isinstance(error, GradeError)
        assert error.kind == "RepairError"
        assert error.detail.startswith('File "')
        assert ", line " in error.detail


class TestSpillerFaults:
    def test_spill_io_error_is_counted_not_fatal(
        self, tmp_path, beers_catalog
    ):
        FAULTS.activate("spill.io")
        session = AssignmentSession(beers_catalog, TARGET)
        path = tmp_path / "cache.json"
        spiller = CacheSpiller(session.cache, str(path), interval=3600)
        session.grade(WRONG)  # dirty the cache
        # stop() without start(): the final flush hits the injected
        # OSError, which is swallowed and counted rather than raised.
        spiller.stop()
        assert spiller.errors == 1
        assert spiller.stats()["errors"] == 1
        assert not path.exists()
        # With the fault gone the same spiller recovers on the next try.
        FAULTS.clear()
        assert spiller.spill() >= 1

    def test_stop_join_timeout_is_counted_and_skips_flush(
        self, tmp_path, beers_catalog
    ):
        # Regression: a wedged spill thread used to hang shutdown on an
        # unbounded join, and a "successful" stop() would then race a
        # second writer against it.  Now the join is bounded, counted,
        # and the final flush is skipped while the thread is live.
        FAULTS.activate("spill.stall", s=20)
        session = AssignmentSession(beers_catalog, TARGET)
        path = tmp_path / "cache.json"
        spiller = CacheSpiller(session.cache, str(path), interval=0.05)
        spiller.start()
        try:
            session.grade(WRONG)  # dirty the cache so the loop spills
            deadline = time.monotonic() + 5.0
            point = FAULTS.active("spill.stall")
            while point.hits == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            started = time.monotonic()
            spiller.stop(join_timeout=0.2)
            assert time.monotonic() - started < 5.0
            assert spiller.join_timeouts == 1
            assert spiller.stats()["join_timeouts"] == 1
            # The flush was skipped: nothing was written concurrently
            # with the wedged thread's in-flight spill.
            assert spiller.spills == 0
        finally:
            spiller._stop.set()
