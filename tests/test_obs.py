"""Tests for repro.obs: tracer semantics, metrics, exposition."""

import json
import threading

import pytest

from repro.catalog import Catalog
from repro.obs import TRACER, MetricsRegistry, log_buckets, snapshot_delta
from repro.obs.export import parse_prometheus_text, service_metric_families
from repro.obs.metrics import render_families
from repro.obs.trace import _NULL_SPAN
from repro.service.batch import grade_batch
from repro.service.server import HintService
from repro.service.session import AssignmentSession

SCHEMA = {
    "Serves": [["bar", "STRING"], ["beer", "STRING"], ["price", "FLOAT"]],
}
TARGET = "SELECT bar FROM Serves WHERE price > 10"
WRONG = "SELECT bar FROM Serves WHERE price > 5"


def catalog():
    return Catalog.from_spec(SCHEMA)


# ---------------------------------------------------------------------------
# Tracer


class TestTracer:
    def test_disabled_returns_shared_null_span(self):
        assert not TRACER.enabled
        span = TRACER.span("anything", attr=1)
        assert span is _NULL_SPAN
        with span as inner:
            inner.set(more=2)  # no-op, no error

    def test_span_nesting_and_attrs(self):
        with TRACER.trace("root", run=7) as handle:
            assert TRACER.enabled
            with TRACER.span("child") as child:
                child.set(key="value")
                with TRACER.span("grandchild"):
                    pass
            with TRACER.span("sibling"):
                pass
        assert not TRACER.enabled
        d = handle.to_dict()
        assert [s["name"] for s in d["spans"]] == [
            "root", "child", "grandchild", "sibling"
        ]
        by_name = {s["name"]: s for s in d["spans"]}
        assert by_name["root"]["parent"] is None
        assert by_name["child"]["parent"] == by_name["root"]["id"]
        assert by_name["grandchild"]["parent"] == by_name["child"]["id"]
        assert by_name["sibling"]["parent"] == by_name["root"]["id"]
        assert by_name["root"]["attrs"] == {"run": 7}
        assert by_name["child"]["attrs"] == {"key": "value"}
        assert len(d["trace_id"]) == 16
        # tree mirrors the parent links
        (tree_root,) = d["tree"]
        assert [c["name"] for c in tree_root["children"]] == [
            "child", "sibling"
        ]
        json.dumps(d)  # JSON-safe

    def test_nested_trace_captures_subtree(self):
        with TRACER.trace("outer") as outer:
            with TRACER.span("before"):
                pass
            with TRACER.trace("inner") as inner:
                with TRACER.span("work"):
                    pass
        inner_names = [s["name"] for s in inner.to_dict()["spans"]]
        outer_names = [s["name"] for s in outer.to_dict()["spans"]]
        assert inner_names == ["inner", "work"]
        # the nested capture also stays inside the outer trace
        assert outer_names == ["outer", "before", "inner", "work"]
        # both traces share one trace id (same recording)
        assert inner.trace_id == outer.trace_id

    def test_exception_records_error_attr(self):
        with pytest.raises(RuntimeError):
            with TRACER.trace("boom") as handle:
                with TRACER.span("inner"):
                    raise RuntimeError("nope")
        by_name = {s["name"]: s for s in handle.to_dict()["spans"]}
        assert by_name["inner"]["attrs"]["error"] == "RuntimeError"
        assert by_name["boom"]["attrs"]["error"] == "RuntimeError"
        assert not TRACER.enabled  # trace deactivated despite the raise

    def test_traces_are_thread_local(self):
        seen = {}

        def other_thread():
            seen["enabled"] = TRACER.enabled
            seen["span"] = TRACER.span("elsewhere")

        with TRACER.trace("here"):
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
        # The hot-path flag is a conservative process-wide hint...
        assert seen["enabled"] is True
        # ...but recording stays thread-local: the other thread fell
        # through to span() and got the no-op span, not a recorded one.
        assert seen["span"] is _NULL_SPAN
        assert not TRACER.enabled

    def test_adopt_reparents_and_rebases(self):
        with TRACER.trace("worker-side") as worker:
            with TRACER.span("work"):
                pass
        serialized = worker.to_dict()
        with TRACER.trace("parent") as parent:
            with TRACER.span("dispatch"):
                adopted = TRACER.adopt(serialized)
        assert adopted == 2
        d = parent.to_dict()
        by_name = {s["name"]: s for s in d["spans"]}
        # foreign root hangs off the open span at adoption time
        assert by_name["worker-side"]["parent"] == by_name["dispatch"]["id"]
        assert by_name["work"]["parent"] == by_name["worker-side"]["id"]
        # durations survive re-basing exactly
        assert by_name["work"]["duration_ms"] == pytest.approx(
            {s["name"]: s for s in serialized["spans"]}["work"][
                "duration_ms"
            ],
            abs=1e-3,
        )

    def test_adopt_without_active_trace_is_noop(self):
        with TRACER.trace("t") as handle:
            pass
        assert TRACER.adopt(handle.to_dict()) == 0

    def test_render_indents_by_depth(self):
        with TRACER.trace("a") as handle:
            with TRACER.span("b"):
                with TRACER.span("c"):
                    pass
        lines = handle.render()
        assert lines[0].startswith("a ")
        assert lines[1].startswith("  b ")
        assert lines[2].startswith("    c ")


# ---------------------------------------------------------------------------
# Metrics


class TestMetrics:
    def test_counter_labels_and_errors(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total", "hits", ("kind",))
        c.inc(kind="a")
        c.inc(2, kind="a")
        c.inc(kind="b")
        assert c.value(kind="a") == 3
        assert c.value(kind="b") == 1
        assert c.value(kind="missing") == 0
        with pytest.raises(ValueError):
            c.inc(-1, kind="a")
        with pytest.raises(ValueError):
            c.inc(wrong_label="a")

    def test_registration_is_idempotent_but_typed(self):
        reg = MetricsRegistry()
        c1 = reg.counter("x_total", "x", ("l",))
        c2 = reg.counter("x_total", "x", ("l",))
        assert c1 is c2
        with pytest.raises(ValueError):
            reg.gauge("x_total")
        with pytest.raises(ValueError):
            reg.counter("x_total", "x", ("other",))

    def test_histogram_quantiles_from_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", "latency", buckets=log_buckets())
        for _ in range(90):
            h.observe(0.001)
        for _ in range(9):
            h.observe(0.1)
        h.observe(10.0)
        assert h.count() == 100
        assert h.sum() == pytest.approx(90 * 0.001 + 9 * 0.1 + 10.0)
        # quantile returns the upper bound of the containing bucket
        assert h.quantile(0.5) <= 0.0016
        assert 0.05 <= h.quantile(0.95) <= 0.2
        assert h.quantile(0.999) >= 10.0

    def test_histogram_overflow_lands_in_inf_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("t_seconds", "t", buckets=(0.1, 1.0))
        h.observe(50.0)
        assert h.count() == 1
        assert h.quantile(0.5) == 1.0  # capped at the top finite bound

    def test_snapshot_merge_roundtrip(self):
        reg = MetricsRegistry()
        c = reg.counter("ops_total", "ops", ("op",))
        g = reg.gauge("level", "level")
        h = reg.histogram("dur_seconds", "dur", buckets=(0.1, 1.0))
        c.inc(3, op="read")
        g.set(7)
        h.observe(0.05)
        h.observe(5.0)
        snap = reg.snapshot()
        json.dumps(snap)  # JSON-safe

        other = MetricsRegistry()
        other.merge(snap)
        other.merge(snap)  # counters/histograms add, gauges overwrite
        assert other.get("ops_total").value(op="read") == 6
        assert other.get("level").value() == 7
        assert other.get("dur_seconds").count() == 4

    def test_snapshot_delta(self):
        reg = MetricsRegistry()
        c = reg.counter("n_total", "n")
        h = reg.histogram("d_seconds", "d", buckets=(1.0,))
        c.inc(5)
        h.observe(0.5)
        before = reg.snapshot()
        c.inc(2)
        h.observe(0.7)
        delta = snapshot_delta(before, reg.snapshot())
        fresh = MetricsRegistry()
        fresh.merge(delta)
        assert fresh.get("n_total").value() == 2
        assert fresh.get("d_seconds").count() == 1
        # nothing changed -> empty delta
        assert snapshot_delta(reg.snapshot(), reg.snapshot()) == {}

    def test_render_parses_as_prometheus_text(self):
        reg = MetricsRegistry()
        c = reg.counter("req_total", "requests", ("route", "status"))
        c.inc(4, route="/grade", status="200")
        c.inc(1, route="/grade", status="400")
        h = reg.histogram("req_seconds", "latency", ("route",),
                          buckets=(0.01, 0.1, 1.0))
        h.observe(0.05, route="/grade")
        h.observe(0.5, route="/grade")
        text = reg.render()
        families = parse_prometheus_text(text)
        assert families["req_total"]["kind"] == "counter"
        samples = {
            (labels["route"], labels["status"]): value
            for _, labels, value in families["req_total"]["samples"]
        }
        assert samples[("/grade", "200")] == 4
        hist = families["req_seconds"]
        assert hist["kind"] == "histogram"
        buckets = {
            labels["le"]: value
            for name, labels, value in hist["samples"]
            if name == "req_seconds_bucket"
        }
        assert buckets["0.1"] == 1
        assert buckets["+Inf"] == 2

    def test_label_escaping_survives_round_trip(self):
        reg = MetricsRegistry()
        c = reg.counter("weird_total", "weird", ("sql",))
        c.inc(sql='SELECT "x"\nFROM t\\u')
        families = parse_prometheus_text(reg.render())
        ((_, labels, value),) = families["weird_total"]["samples"]
        assert labels["sql"] == 'SELECT "x"\nFROM t\\u'
        assert value == 1

    def test_parser_rejects_malformed_text(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("no_type_declared 1\n")
        with pytest.raises(ValueError):
            parse_prometheus_text("# TYPE x bogus_kind\nx 1\n")
        with pytest.raises(ValueError):
            parse_prometheus_text("# TYPE x counter\nx notanumber\n")
        # histogram without +Inf bucket
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 1\n'
            "h_sum 0.5\n"
            "h_count 1\n"
        )
        with pytest.raises(ValueError):
            parse_prometheus_text(bad)
        # _count disagreeing with +Inf
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 1\n'
            'h_bucket{le="+Inf"} 2\n'
            "h_sum 0.5\n"
            "h_count 3\n"
        )
        with pytest.raises(ValueError):
            parse_prometheus_text(bad)


# ---------------------------------------------------------------------------
# Service exposition


class TestServiceFamilies:
    def test_solver_cache_counters_rehomed(self):
        service = HintService()
        service.create_assignment(
            catalog(), TARGET, assignment_id="a1"
        )
        session = service.session("a1")
        session.grade(WRONG)
        session.grade(WRONG)  # second grade hits the artifact cache
        families = {f["name"]: f for f in service_metric_families(service)}
        def value(name):
            ((labels, v),) = families[name]["samples"]
            assert labels == {"assignment": "a1"}
            return v
        assert value("repro_session_submissions_total") == 2
        assert value("repro_session_pipeline_runs_total") == 1
        assert value("repro_cache_hits_total") == 1
        assert value("repro_cache_misses_total") == 1
        assert value("repro_solver_sat_calls_total") > 0
        text = render_families(service_metric_families(service))
        parsed = parse_prometheus_text(text)
        assert "repro_solver_sat_calls_total" in parsed


# ---------------------------------------------------------------------------
# End-to-end traced grading


class TestTracedGrading:
    def test_traced_grade_covers_stages_and_solver(self):
        session = AssignmentSession(catalog(), TARGET)
        with TRACER.trace("grade") as handle:
            result = session.grade(WRONG)
        assert not result.all_passed
        names = [s["name"] for s in handle.to_dict()["spans"]]
        for required in (
            "session.grade",
            "cache.get",
            "pipeline.run",
            "stage.FROM",
            "stage.WHERE",
            "stage.SELECT",
            "solver.solve",
        ):
            assert required in names, f"missing span {required}: {names}"

    def test_cached_grade_skips_pipeline_spans(self):
        session = AssignmentSession(catalog(), TARGET)
        session.grade(WRONG)  # warm the artifact cache
        with TRACER.trace("grade") as handle:
            result = session.grade(WRONG)
        assert result.cached
        names = [s["name"] for s in handle.to_dict()["spans"]]
        assert "pipeline.run" not in names
        assert "cache.get" in names

    def test_batch_traces_serialize_and_reparent(self):
        subs = [WRONG, WRONG, "SELECT beer FROM Serves WHERE price < 2"]
        with TRACER.trace("batch") as handle:
            batch = grade_batch(
                catalog(), TARGET, subs, processes=1, trace=True
            )
        assert len(batch.traces) == batch.unique == 2
        for trace in batch.traces:
            names = [s["name"] for s in trace["spans"]]
            assert names[0] == "grade"
            assert "pipeline.run" in names
            json.dumps(trace)
        # the serial path records straight into the open parent trace
        parent_names = [s["name"] for s in handle.to_dict()["spans"]]
        assert parent_names.count("grade") == 2

    def test_multiprocess_batch_traces(self):
        subs = [WRONG, "SELECT beer FROM Serves WHERE price < 2"]
        batch = grade_batch(
            catalog(), TARGET, subs, processes=2, trace=True
        )
        assert batch.processes == 2
        assert len(batch.traces) == 2
        for trace in batch.traces:
            names = [s["name"] for s in trace["spans"]]
            assert "pipeline.run" in names

    def test_untraced_batch_has_no_traces(self):
        batch = grade_batch(catalog(), TARGET, [WRONG], processes=1)
        assert batch.traces == []


# ---------------------------------------------------------------------------
# Adopt edge cases


class TestAdoptEdgeCases:
    def test_empty_payloads_adopt_zero_spans(self):
        with TRACER.trace("parent") as parent:
            assert TRACER.adopt({}) == 0
            assert TRACER.adopt(None) == 0
            assert TRACER.adopt({"wall_start": None, "spans": []}) == 0
            assert TRACER.adopt({"spans": None}) == 0
        # The parent trace survives uncorrupted.
        d = parent.to_dict()
        assert [s["name"] for s in d["spans"]] == ["parent"]

    def test_worker_started_before_parent_clamps_offset(self):
        # A worker whose wall clock reads *earlier* than the parent's
        # trace start (clock skew, or a long-lived worker pool) must not
        # push spans to negative start times.
        with TRACER.trace("worker-side") as worker:
            with TRACER.span("work"):
                pass
        serialized = worker.to_dict()
        serialized["wall_start"] = 0.0  # epoch: long before the parent
        with TRACER.trace("parent") as parent:
            assert TRACER.adopt(serialized) == 2
        adopted = [s for s in parent.to_dict()["spans"]
                   if s["name"] in ("worker-side", "work")]
        assert len(adopted) == 2
        for span in adopted:
            assert span["start_ms"] >= 0.0
            assert span["duration_ms"] >= 0.0

    def test_missing_wall_start_rebases_to_parent_zero(self):
        with TRACER.trace("worker-side") as worker:
            with TRACER.span("work"):
                pass
        serialized = worker.to_dict()
        serialized.pop("wall_start", None)
        with TRACER.trace("parent") as parent:
            assert TRACER.adopt(serialized) == 2
        by_name = {s["name"]: s for s in parent.to_dict()["spans"]}
        assert by_name["work"]["parent"] == by_name["worker-side"]["id"]
        assert by_name["work"]["start_ms"] >= 0.0

    def test_negative_span_fields_clamped(self):
        with TRACER.trace("worker-side") as worker:
            with TRACER.span("work"):
                pass
        serialized = worker.to_dict()
        for span in serialized["spans"]:
            span["start_ms"] = -5.0
            span["duration_ms"] = None
        with TRACER.trace("parent") as parent:
            TRACER.adopt(serialized)
        adopted = [s for s in parent.to_dict()["spans"]
                   if s["name"] in ("worker-side", "work")]
        for span in adopted:
            assert span["start_ms"] >= 0.0
            assert span["duration_ms"] >= 0.0


# ---------------------------------------------------------------------------
# Registry merge under concurrent workers


class TestConcurrentMerge:
    def test_three_worker_deltas_merge_consistently(self):
        from repro.obs import MetricsRegistry

        parent = MetricsRegistry()
        parent.histogram("repro_grade_seconds", "grade latency", ("cached",))
        parent.counter("repro_grades_total", "grades", ("cached",))
        observations = {0: [0.001, 0.5, 2.0], 1: [0.002, 0.25], 2: [4.0]}

        def worker(worker_id):
            registry = MetricsRegistry()
            before = registry.snapshot()
            hist = registry.histogram(
                "repro_grade_seconds", "grade latency", ("cached",)
            )
            count = registry.counter(
                "repro_grades_total", "grades", ("cached",)
            )
            for value in observations[worker_id]:
                hist.observe(value, cached="false")
                count.inc(cached="false")
            return snapshot_delta(before, registry.snapshot())

        deltas = [worker(i) for i in range(3)]
        threads = [
            threading.Thread(target=parent.merge, args=(delta,))
            for delta in deltas
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        total = sum(len(v) for v in observations.values())
        snap = parent.snapshot()
        (hist_series,) = snap["repro_grade_seconds"]["values"]
        (counter_series,) = snap["repro_grades_total"]["values"]
        assert counter_series[0] == ["false"] and counter_series[1] == total
        bucket_counts, observed_sum = hist_series[1]
        # Every worker observation landed in exactly one bucket, and the
        # merged sum is the exact sum of all worker observations.
        assert sum(bucket_counts) == total
        assert observed_sum == pytest.approx(
            sum(sum(v) for v in observations.values())
        )
        # Bucket counts are cumulative-consistent: monotone after a
        # cumulative sweep, and the +Inf bucket equals _count.
        families = parse_prometheus_text(parent.render())
        assert families["repro_grade_seconds"]["kind"] == "histogram"

    def test_merged_batch_worker_deltas_are_count_consistent(self):
        # End to end: a multiprocess batch merges real worker deltas into
        # the parent registry.  Each of the 3 unique forms runs the
        # pipeline once in some worker, so the merged stage-latency
        # histogram must gain exactly 3 observations per executed stage
        # -- sum-of-buckets (which includes +Inf) agreeing with _count.
        from repro.obs import REGISTRY

        subs = [
            WRONG,
            "SELECT beer FROM Serves WHERE price < 2",
            "SELECT bar FROM Serves WHERE price > 99",
        ]
        before = REGISTRY.snapshot()
        grade_batch(catalog(), TARGET, subs, processes=3)
        delta = snapshot_delta(before, REGISTRY.snapshot())
        stage_series = delta["repro_stage_seconds"]["values"]
        assert stage_series, "no merged stage observations"
        by_stage = {tuple(labels): value for labels, value in stage_series}
        for labels, (bucket_counts, observed_sum) in by_stage.items():
            assert sum(bucket_counts) == 3, labels
            assert observed_sum >= 0.0
        # Every SPJ stage the pipeline executed is represented.
        stages = {labels[0] for labels in by_stage}
        assert {"FROM", "WHERE", "SELECT"} <= stages


# ---------------------------------------------------------------------------
# Solver-effort attribution


class TestEffortUnits:
    def test_delta_orders_effort_keys_first(self):
        from repro.obs import EFFORT_KEYS, effort_delta

        before = {"sat_calls": 2, "propagations": 10, "custom": 1}
        after = {"sat_calls": 5, "propagations": 25, "custom": 4}
        delta = effort_delta(before, after)
        assert delta["sat_calls"] == 3
        assert delta["propagations"] == 15
        assert delta["custom"] == 3
        ordered = list(delta)
        assert ordered.index("sat_calls") < ordered.index("custom")
        assert [k for k in ordered if k in EFFORT_KEYS] == [
            k for k in EFFORT_KEYS if k in delta
        ]

    def test_snapshot_filters_non_ints(self):
        from repro.obs import effort_snapshot
        from repro.solver import Solver

        snap = effort_snapshot(Solver())
        assert all(isinstance(v, int) for v in snap.values())
        assert "sat_calls" in snap
        assert "cache_hit_rate" not in snap

    def test_meter_and_merge(self):
        from repro.obs import EffortMeter, merge_effort
        from repro.logic.formulas import Comparison
        from repro.logic.terms import const, intvar
        from repro.solver import Solver

        solver = Solver()
        formula = Comparison("<", intvar("x"), const(3))
        with EffortMeter(solver) as meter:
            solver.find_model(formula)
        assert meter.delta["sat_calls"] >= 1
        total = merge_effort({}, meter.delta)
        merge_effort(total, meter.delta)
        assert total["sat_calls"] == 2 * meter.delta["sat_calls"]

    def test_mean_effort_rounds_per_delta(self):
        from repro.obs import mean_effort

        deltas = [{"sat_calls": 1, "propagations": 10},
                  {"sat_calls": 2},
                  {"sat_calls": 3, "propagations": 5}]
        means = mean_effort(deltas)
        assert means["sat_calls"] == 2.0
        # Absent keys count as zero contribution over ALL deltas.
        assert means["propagations"] == 5.0
        assert mean_effort([]) == {}

    def test_record_route_effort_bounded_labels(self):
        from repro.obs import MetricsRegistry, record_route_effort

        registry = MetricsRegistry()
        counter = record_route_effort(
            "/grade", {"sat_calls": 4, "propagations": 0, "bogus": 9},
            registry=registry,
        )
        assert counter.value(route="/grade", counter="sat_calls") == 4
        # Zero-valued and non-EFFORT_KEYS counters are never emitted.
        assert counter.value(route="/grade", counter="propagations") == 0
        assert counter.value(route="/grade", counter="bogus") == 0


class TestEffortAttribution:
    def test_grade_effort_opt_in(self):
        session = AssignmentSession(catalog(), TARGET)
        plain = session.grade(WRONG)
        assert plain.effort is None
        assert "effort" not in plain.to_dict()

        session = AssignmentSession(catalog(), TARGET)
        measured = session.grade(WRONG, effort=True)
        assert measured.effort is not None
        assert measured.effort["sat_calls"] >= 1
        assert measured.to_dict()["effort"] == measured.effort

    def test_effort_field_does_not_change_grading(self):
        a = AssignmentSession(catalog(), TARGET).grade(WRONG)
        b = AssignmentSession(catalog(), TARGET).grade(WRONG, effort=True)
        assert a.stage_hints == b.stage_hints
        assert a.text() == b.text()

    def test_cached_grade_measures_zero_effort(self):
        session = AssignmentSession(catalog(), TARGET)
        session.grade(WRONG, effort=True)
        cached = session.grade(WRONG, effort=True)
        assert cached.cached
        assert all(v == 0 for v in cached.effort.values())

    def test_stage_spans_carry_effort_when_traced(self):
        session = AssignmentSession(catalog(), TARGET)
        with TRACER.trace("grade-with-effort") as handle:
            session.grade(WRONG)
        stage_spans = [
            s for s in handle.to_dict()["spans"]
            if s["name"].startswith("stage.")
        ]
        assert stage_spans
        assert all("effort" in s["attrs"] for s in stage_spans)
        where = [s for s in stage_spans if s["name"] == "stage.WHERE"]
        assert where and where[0]["attrs"]["effort"].get("sat_calls", 0) >= 1
        # Effort attrs only list nonzero counters (compact JSON).
        for span in stage_spans:
            assert all(v for v in span["attrs"]["effort"].values())

    @pytest.mark.parametrize("processes", [1, 2])
    def test_batch_effort_per_form(self, processes):
        from repro.obs import EFFORT_KEYS

        subs = [WRONG, WRONG, "SELECT beer FROM Serves WHERE price < 2"]
        batch = grade_batch(
            catalog(), TARGET, subs, processes=processes, effort=True
        )
        efforts = [r.effort for r in batch.results]
        assert all(e is not None for e in efforts)
        assert all(set(EFFORT_KEYS) <= set(e) for e in efforts)
        # Duplicate submissions share their unique form's grading delta.
        assert efforts[0] == efforts[1]
        assert efforts[0]["sat_calls"] >= 1
        assert efforts[2]["sat_calls"] >= 1

    def test_batch_without_effort_leaves_field_none(self):
        batch = grade_batch(catalog(), TARGET, [WRONG], processes=1)
        assert batch.results[0].effort is None
