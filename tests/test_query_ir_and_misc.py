"""Tests for the query IR, normal forms, hints, and failure-injection paths."""

import pytest

from repro.errors import SolverLimitError
from repro.logic.forms import to_dnf, to_nnf
from repro.logic.formulas import And, Comparison, FALSE, Not, Or, TRUE, conj, disj, neg
from repro.logic.terms import const, intvar
from repro.query import FromEntry, ResolvedQuery
from repro.sqlparser import parse_query

A = Comparison("=", intvar("a"), const(1))
B = Comparison("<", intvar("b"), const(2))
C = Comparison(">", intvar("c"), const(3))


class TestNormalForms:
    def test_nnf_pushes_negation_to_atoms(self):
        formula = Not(And((A, Or((B, C)))))
        nnf = to_nnf(formula)
        assert not any(isinstance(node, Not) for node in _nodes(nnf))

    def test_nnf_folds_atoms(self):
        assert to_nnf(Not(A)) == A.negated()

    def test_nnf_constants(self):
        assert to_nnf(Not(TRUE)) == FALSE

    def test_dnf_structure(self):
        formula = conj(disj(A, B), C)
        dnf = to_dnf(formula)
        assert isinstance(dnf, Or)
        for clause in dnf.operands:
            assert not isinstance(clause, Or)

    def test_dnf_preserves_semantics(self, solver):
        formula = conj(disj(A, B), disj(C, neg(A)))
        assert solver.is_equiv(formula, to_dnf(formula))

    def test_dnf_blowup_guarded(self):
        big = conj(
            *(disj(Comparison("=", intvar(f"x{i}"), const(0)),
                   Comparison("=", intvar(f"y{i}"), const(0)))
              for i in range(15))
        )
        with pytest.raises(ValueError):
            to_dnf(big, max_clauses=100)


def _nodes(formula):
    out = [formula]
    for child in formula.children():
        out.extend(_nodes(child))
    return out


class TestResolvedQueryIR:
    def test_tables_multiset_counts_duplicates(self, beers_catalog):
        query = parse_query(
            "SELECT s1.beer FROM Serves s1, Serves s2, Likes "
            "WHERE s1.beer = s2.beer AND s1.beer = likes.beer",
            beers_catalog,
        )
        counts = query.tables_multiset()
        assert counts["serves"] == 2
        assert counts["likes"] == 1

    def test_aliases_of_and_table_of(self, beers_catalog):
        query = parse_query(
            "SELECT s1.beer FROM Serves s1, Serves s2 WHERE s1.beer = s2.beer",
            beers_catalog,
        )
        assert query.aliases_of("serves") == ["s1", "s2"]
        assert query.table_of("s1") == "Serves"
        assert query.table_of("zzz") is None

    def test_rename_aliases_rewrites_everything(self, beers_catalog):
        query = parse_query(
            "SELECT s.beer FROM Serves s WHERE s.price > 2 GROUP BY s.beer "
            "HAVING COUNT(*) > 1",
            beers_catalog,
        )
        renamed = query.rename_aliases({"s": "srv"})
        assert renamed.aliases() == ["srv"]
        names = {v.name for v in renamed.where.variables()}
        assert names == {"srv.price"}
        assert renamed.group_by[0].name == "srv.beer"
        assert renamed.select[0].name == "srv.beer"

    def test_to_sql_round_trip(self, beers_catalog):
        query = parse_query(
            "SELECT bar, COUNT(*) FROM Serves WHERE price > 1 "
            "GROUP BY bar HAVING COUNT(*) >= 2",
            beers_catalog,
        )
        again = parse_query(query.to_sql(), beers_catalog)
        assert again.group_by == query.group_by
        assert again.having == query.having

    def test_from_entry_rendering(self):
        assert str(FromEntry("Serves", "serves")) == "Serves"
        assert str(FromEntry("Serves", "s1")) == "Serves s1"

    def test_select_aliases_rendered(self, beers_catalog):
        query = parse_query("SELECT beer AS b FROM Serves", beers_catalog)
        assert "AS b" in query.to_sql()


class TestHintObjects:
    def test_hint_str_includes_stage(self):
        from repro.core.hints import Hint

        hint = Hint("WHERE", "repair-site", "fix it", site="a > b")
        assert str(hint).startswith("[WHERE]")
        assert hint.public_message() == "fix it"

    def test_from_stage_hint_counts(self):
        from repro.core.from_stage import FromDelta
        from repro.core.hints import from_stage_hints

        delta = FromDelta(missing={"likes": 2}, extra={"bar": 1})
        hints = from_stage_hints(delta)
        assert len(hints) == 2
        kinds = {h.kind for h in hints}
        assert kinds == {"missing-table", "extra-table"}

    def test_select_hints_cover_all_categories(self):
        from repro.core.select_stage import SelectDelta
        from repro.core.hints import select_hints

        terms = (intvar("x"), intvar("y"), intvar("z"))
        delta = SelectDelta(remove=[0, 2], add=[0, 3])
        hints = select_hints(delta, terms, target_len=4)
        kinds = [h.kind for h in hints]
        assert "wrong-expr" in kinds
        assert "extra-expr" in kinds
        assert "missing-expr" in kinds


class TestFailureInjection:
    def test_minfix_atom_budget_enforced(self, solver):
        from repro.core.minfix import min_fix

        atoms = [
            Comparison("=", intvar(f"v{i}"), const(i)) for i in range(16)
        ]
        lower = conj(*atoms)
        upper = disj(*atoms)
        with pytest.raises(SolverLimitError):
            min_fix(lower, upper, solver)

    def test_repair_where_survives_minfix_budget(self, solver):
        # When a candidate site's fix derivation exceeds the atom budget,
        # RepairWhere skips it rather than crashing (falls back to other
        # sites, ultimately the root).
        from repro.core.where_repair import repair_where

        p = conj(*(Comparison("=", intvar(f"v{i}"), const(i)) for i in range(6)))
        p_star = conj(
            *(Comparison("=", intvar(f"v{i}"), const(i + 1)) for i in range(6))
        )
        result = repair_where(p, p_star, max_sites=2, solver=solver)
        assert result.found

    def test_solver_conflict_budget(self):
        from repro.solver import Solver

        tiny = Solver(max_conflicts=1)
        x, y = intvar("x"), intvar("y")
        # UNSAT but needs two theory conflicts to close: either disjunct
        # contradicts x = y, so one blocking clause is not enough.
        hard = conj(
            disj(Comparison("<", x, y), Comparison(">", x, y)),
            Comparison("=", x, y),
        )
        with pytest.raises(SolverLimitError):
            tiny.is_satisfiable(hard)

    def test_engine_rejects_bool_for_numeric(self, beers_catalog):
        from repro.engine import Database

        with pytest.raises(TypeError):
            Database(beers_catalog, {"Serves": [("Joyce", "Bud", True)]})
