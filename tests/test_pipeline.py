"""End-to-end tests for the QrHint pipeline (Theorem 3.1 behaviour)."""

import pytest

from repro.core.pipeline import QrHint
from repro.engine import appear_equivalent


def run_and_verify(catalog, target, working, **kwargs):
    report = QrHint(catalog, target, working, **kwargs).run()
    assert appear_equivalent(
        report.final_query, report.target_query, catalog, trials=40
    ), report.final_query.to_sql()
    return report


class TestPaperExample1(object):
    TARGET = """
        SELECT L.beer, S1.bar, COUNT(*)
        FROM Likes L, Frequents F, Serves S1, Serves S2
        WHERE L.drinker = F.drinker AND F.bar = S1.bar AND L.beer = S1.beer
          AND S1.beer = S2.beer AND S1.price <= S2.price
        GROUP BY F.drinker, L.beer, S1.bar
        HAVING F.drinker = 'Amy'
    """
    WORKING = """
        SELECT s2.beer, s2.bar, COUNT(*)
        FROM Likes, Serves s1, Serves s2
        WHERE drinker = 'Amy' AND Likes.beer = s1.beer
          AND Likes.beer = s2.beer AND s1.price > s2.price
        GROUP BY s2.beer, s2.bar
    """

    def test_example_2_hint_sequence(self, beers_catalog):
        report = run_and_verify(beers_catalog, self.TARGET, self.WORKING)
        by_stage = {s.stage: s for s in report.stages}
        # FROM: Frequents needed (paper's first hint).
        assert not by_stage["FROM"].passed
        assert any("frequents" in h.message.lower() for h in by_stage["FROM"].hints)
        # WHERE: the price comparison is the repair site (paper's second hint).
        assert not by_stage["WHERE"].passed
        assert any("price" in (h.site or "") for h in by_stage["WHERE"].hints)
        # No spurious hints in later stages (paper: "knows not to suggest
        # spurious hints such as adding Frequents.drinker to GROUP BY").
        assert by_stage["GROUP BY"].passed
        assert by_stage["HAVING"].passed
        assert by_stage["SELECT"].passed

    def test_having_where_movement_not_flagged(self, beers_catalog):
        # drinker='Amy' in WHERE vs HAVING F.drinker='Amy' must not trigger
        # a HAVING hint (the look-ahead of Section 3.1).
        report = run_and_verify(beers_catalog, self.TARGET, self.WORKING)
        having = [h for h in report.hints if h.stage == "HAVING"]
        assert not having


class TestPipelineBasics:
    def test_equivalent_queries_produce_no_hints(self, beers_catalog):
        target = "SELECT beer FROM Serves WHERE price > 2 AND bar = 'Joyce'"
        working = "SELECT serves.beer FROM Serves WHERE bar = 'Joyce' AND 2 < price"
        report = run_and_verify(beers_catalog, target, working)
        assert report.all_passed
        assert not report.hints

    def test_single_where_error(self, beers_catalog):
        target = "SELECT beer FROM Serves WHERE price > 2"
        working = "SELECT beer FROM Serves WHERE price >= 2"
        report = run_and_verify(beers_catalog, target, working)
        assert [s.stage for s in report.stages if not s.passed] == ["WHERE"]

    def test_select_order_error(self, beers_catalog):
        target = "SELECT bar, beer FROM Serves"
        working = "SELECT beer, bar FROM Serves"
        report = run_and_verify(beers_catalog, target, working)
        assert [s.stage for s in report.stages if not s.passed] == ["SELECT"]

    def test_distinct_mismatch_flagged(self, beers_catalog):
        target = "SELECT DISTINCT beer FROM Serves"
        working = "SELECT beer FROM Serves"
        report = run_and_verify(beers_catalog, target, working)
        assert any(h.kind == "distinct" for h in report.hints)

    def test_missing_group_by_query_becomes_aggregate(self, beers_catalog):
        target = "SELECT bar, COUNT(*) FROM Serves GROUP BY bar"
        working = "SELECT bar, COUNT(*) FROM Serves GROUP BY bar, beer"
        report = run_and_verify(beers_catalog, target, working)
        assert any(h.stage == "GROUP BY" for h in report.hints)

    def test_having_constant_error(self, beers_catalog):
        target = (
            "SELECT drinker FROM Likes GROUP BY drinker HAVING COUNT(*) >= 2"
        )
        working = (
            "SELECT drinker FROM Likes GROUP BY drinker HAVING COUNT(*) > 2"
        )
        report = run_and_verify(beers_catalog, target, working)
        failed = [s.stage for s in report.stages if not s.passed]
        assert failed == ["HAVING"]

    def test_report_summary_renders(self, beers_catalog):
        target = "SELECT beer FROM Serves WHERE price > 2"
        working = "SELECT beer FROM Serves WHERE price >= 3"
        report = QrHint(beers_catalog, target, working).run()
        text = report.summary()
        assert "WHERE" in text

    def test_stage_timings_recorded(self, beers_catalog):
        report = QrHint(
            beers_catalog,
            "SELECT beer FROM Serves",
            "SELECT beer FROM Serves",
        ).run()
        assert all(s.elapsed >= 0 for s in report.stages)
        assert report.elapsed > 0

    def test_spj_pipeline_has_three_stages(self, beers_catalog):
        report = QrHint(
            beers_catalog,
            "SELECT beer FROM Serves",
            "SELECT beer FROM Serves",
        ).run()
        assert [s.stage for s in report.stages] == ["FROM", "WHERE", "SELECT"]

    def test_spja_pipeline_has_five_stages(self, beers_catalog):
        report = QrHint(
            beers_catalog,
            "SELECT bar, COUNT(*) FROM Serves GROUP BY bar",
            "SELECT bar, COUNT(*) FROM Serves GROUP BY bar",
        ).run()
        assert [s.stage for s in report.stages] == [
            "FROM",
            "WHERE",
            "GROUP BY",
            "HAVING",
            "SELECT",
        ]


class TestMultiErrorRecovery:
    def test_from_and_where_and_select(self, beers_catalog):
        target = (
            "SELECT name, address FROM Bar, Serves "
            "WHERE Bar.name = Serves.bar AND beer = 'Budweiser' AND price > 2.20"
        )
        working = "SELECT address FROM Bar WHERE name = 'Budweiser'"
        report = run_and_verify(beers_catalog, target, working)
        stages_failed = {s.stage for s in report.stages if not s.passed}
        assert "FROM" in stages_failed

    def test_self_join_missing_copy(self, beers_catalog):
        target = (
            "SELECT DISTINCT l1.drinker FROM Likes l1, Likes l2 "
            "WHERE l1.drinker = l2.drinker AND l1.beer <> l2.beer"
        )
        working = "SELECT DISTINCT l1.drinker FROM Likes l1 WHERE l1.beer <> 'x'"
        report = run_and_verify(beers_catalog, target, working)
        assert not report.stages[0].passed  # FROM stage flagged

    def test_everything_wrong_still_converges(self, beers_catalog):
        target = (
            "SELECT likes.drinker FROM Likes, Frequents "
            "WHERE likes.drinker = frequents.drinker "
            "AND frequents.bar = 'James Joyce Pub' AND likes.beer = 'Corona'"
        )
        working = "SELECT beer FROM Likes WHERE beer = 'Bud'"
        run_and_verify(beers_catalog, target, working)


class TestUserStudyQueries:
    @pytest.mark.parametrize("qid", ["Q1", "Q2", "Q3", "Q4"])
    def test_dblp_questions_converge(self, dblp_catalog, qid):
        from repro.workloads.dblp import QUESTIONS

        question = next(q for q in QUESTIONS if q.qid == qid)
        report = QrHint(
            dblp_catalog, question.correct_sql, question.wrong_sql
        ).run()
        assert appear_equivalent(
            report.final_query, report.target_query, dblp_catalog, trials=25
        )
        assert not report.all_passed  # the wrong queries are indeed wrong
