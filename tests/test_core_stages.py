"""Tests for the FROM / GROUP BY / HAVING / SELECT stages and table mapping."""

import pytest

from repro.core.from_stage import apply_from_fix, check_from
from repro.core.groupby_stage import apply_grouping_fix, fix_grouping
from repro.core.having_stage import (
    analyze_having,
    having_equivalent,
    repair_having,
    split_having,
)
from repro.core.select_stage import apply_select_fix, fix_select
from repro.core.table_mapping import find_table_mapping, unify_target
from repro.logic.formulas import TRUE
from repro.sqlparser import parse_query


class TestFromStage:
    def test_viable_when_multisets_match(self, beers_catalog):
        target = parse_query("SELECT beer FROM Serves", beers_catalog)
        working = parse_query("SELECT s.beer FROM Serves s", beers_catalog)
        assert check_from(target, working).viable

    def test_missing_table_detected(self, beers_catalog):
        target = parse_query(
            "SELECT likes.beer FROM Likes, Frequents "
            "WHERE likes.drinker = frequents.drinker",
            beers_catalog,
        )
        working = parse_query("SELECT beer FROM Likes", beers_catalog)
        delta = check_from(target, working)
        assert delta.missing == {"frequents": 1}
        assert not delta.extra

    def test_extra_table_detected(self, beers_catalog):
        target = parse_query("SELECT beer FROM Likes", beers_catalog)
        working = parse_query(
            "SELECT likes.beer FROM Likes, Drinker", beers_catalog
        )
        delta = check_from(target, working)
        assert delta.extra == {"drinker": 1}

    def test_self_join_count_mismatch(self, beers_catalog):
        target = parse_query(
            "SELECT s1.beer FROM Serves s1, Serves s2 WHERE s1.bar = s2.bar",
            beers_catalog,
        )
        working = parse_query("SELECT s1.beer FROM Serves s1", beers_catalog)
        delta = check_from(target, working)
        assert delta.missing == {"serves": 1}

    def test_apply_fix_adds_fresh_alias(self, beers_catalog):
        target = parse_query(
            "SELECT s1.beer FROM Serves s1, Serves s2 WHERE s1.bar = s2.bar",
            beers_catalog,
        )
        working = parse_query("SELECT serves.beer FROM Serves", beers_catalog)
        fixed = apply_from_fix(working, target, check_from(target, working))
        assert fixed.tables_multiset() == target.tables_multiset()
        assert len(set(fixed.aliases())) == 2

    def test_apply_fix_scrubs_removed_references(self, beers_catalog):
        target = parse_query("SELECT beer FROM Likes", beers_catalog)
        working = parse_query(
            "SELECT likes.beer FROM Likes, Drinker WHERE drinker.name = 'Amy'",
            beers_catalog,
        )
        fixed = apply_from_fix(working, target, check_from(target, working))
        assert fixed.tables_multiset() == target.tables_multiset()
        assert not any(
            v.name.startswith("drinker.") for v in fixed.where.variables()
        )


class TestTableMapping:
    def test_identity_for_distinct_tables(self, beers_catalog):
        target = parse_query(
            "SELECT likes.beer FROM Likes, Serves "
            "WHERE likes.beer = serves.beer",
            beers_catalog,
        )
        working = parse_query(
            "SELECT l.beer FROM Likes l, Serves s WHERE l.beer = s.beer",
            beers_catalog,
        )
        mapping = find_table_mapping(target, working, beers_catalog)
        assert mapping == {"likes": "l", "serves": "s"}

    def test_self_join_roles_matched_by_signature(self, beers_catalog):
        # Paper Example 4/12: S1 plays the "frequented bar" role; in the
        # working query that role is played by s2.
        target = parse_query(
            "SELECT L.beer, S1.bar, COUNT(*) "
            "FROM Likes L, Frequents F, Serves S1, Serves S2 "
            "WHERE L.drinker = F.drinker AND F.bar = S1.bar AND L.beer = S1.beer "
            "AND S1.beer = S2.beer AND S1.price <= S2.price "
            "GROUP BY F.drinker, L.beer, S1.bar HAVING F.drinker = 'Amy'",
            beers_catalog,
        )
        working = parse_query(
            "SELECT s2.beer, s2.bar, COUNT(*) "
            "FROM Likes, Frequents, Serves s1, Serves s2 "
            "WHERE likes.drinker = 'Amy' AND likes.beer = s1.beer "
            "AND likes.beer = s2.beer AND s1.price > s2.price "
            "GROUP BY s2.beer, s2.bar",
            beers_catalog,
        )
        mapping = find_table_mapping(target, working, beers_catalog)
        assert mapping["s1"] == "s2"
        assert mapping["s2"] == "s1"

    def test_unify_renames_target_formulas(self, beers_catalog):
        target = parse_query(
            "SELECT l.beer FROM Likes l WHERE l.drinker = 'Amy'", beers_catalog
        )
        working = parse_query(
            "SELECT x.beer FROM Likes x WHERE x.drinker = 'Amy'", beers_catalog
        )
        unified, mapping = unify_target(target, working, beers_catalog)
        assert mapping == {"l": "x"}
        assert unified.where == working.where

    def test_mismatched_multisets_rejected(self, beers_catalog):
        target = parse_query("SELECT beer FROM Likes", beers_catalog)
        working = parse_query("SELECT beer FROM Serves", beers_catalog)
        with pytest.raises(ValueError):
            find_table_mapping(target, working, beers_catalog)

    def test_alias_swap_collision_safe(self, beers_catalog):
        # Target uses aliases that collide with the working query's in a
        # crossed way; simultaneous rename must not capture.
        target = parse_query(
            "SELECT a.beer FROM Serves a, Serves b WHERE a.price <= b.price",
            beers_catalog,
        )
        working = parse_query(
            "SELECT b.beer FROM Serves a, Serves b WHERE b.price <= a.price",
            beers_catalog,
        )
        unified, mapping = unify_target(target, working, beers_catalog)
        assert sorted(unified.aliases()) == ["a", "b"]
        assert unified.select == working.select


class TestGroupByStage:
    def test_paper_example_6_1(self, rs_catalog, solver):
        # GROUP BY B, D  vs  GROUP BY C+D, C under WHERE B=C are equivalent.
        target = parse_query(
            "SELECT b FROM R, S WHERE b = c GROUP BY b, d", rs_catalog
        )
        working = parse_query(
            "SELECT c FROM R, S WHERE b = c GROUP BY c + d, c", rs_catalog
        )
        delta = fix_grouping(
            target.where, working.group_by, target.group_by, solver
        )
        assert delta.viable

    def test_wrong_expression_flagged(self, rs_catalog, solver):
        target = parse_query(
            "SELECT b, COUNT(*) FROM R GROUP BY b", rs_catalog
        )
        working = parse_query(
            "SELECT b, COUNT(*) FROM R GROUP BY b, a", rs_catalog
        )
        delta = fix_grouping(
            target.where, working.group_by, target.group_by, solver
        )
        assert delta.remove == [1]  # grouping by `a` splits target groups
        assert not delta.add

    def test_missing_expression_flagged(self, rs_catalog, solver):
        target = parse_query(
            "SELECT a, b, COUNT(*) FROM R GROUP BY a, b", rs_catalog
        )
        working = parse_query("SELECT a, COUNT(*) FROM R GROUP BY a", rs_catalog)
        delta = fix_grouping(
            target.where, working.group_by, target.group_by, solver
        )
        assert not delta.remove
        assert delta.add == [1]

    def test_constant_grouping_not_flagged(self, rs_catalog, solver):
        # Grouping by a WHERE-pinned value adds nothing (single group per
        # target partition) and must not be flagged (strong minimality).
        target = parse_query(
            "SELECT b, COUNT(*) FROM R WHERE a = 5 GROUP BY b", rs_catalog
        )
        working = parse_query(
            "SELECT b, COUNT(*) FROM R WHERE a = 5 GROUP BY b, a", rs_catalog
        )
        delta = fix_grouping(
            target.where, working.group_by, target.group_by, solver
        )
        assert delta.viable

    def test_apply_grouping_fix(self, rs_catalog, solver):
        target = parse_query(
            "SELECT a, b, COUNT(*) FROM R GROUP BY a, b", rs_catalog
        )
        working = parse_query(
            "SELECT b, COUNT(*) FROM R GROUP BY b, b + b", rs_catalog
        )
        delta = fix_grouping(
            target.where, working.group_by, target.group_by, solver
        )
        fixed = apply_grouping_fix(working.group_by, target.group_by, delta)
        check = fix_grouping(target.where, fixed, target.group_by, solver)
        assert check.viable


class TestHavingStage:
    def test_paper_example_10(self, rs_catalog, solver):
        # Equivalence via A=C in WHERE, 2*SUM(D) = SUM(D*2), and A>4
        # movable between WHERE and HAVING.
        target = parse_query(
            "SELECT a FROM R, S WHERE a = c AND a > 4 GROUP BY a, b "
            "HAVING a > b + 3 AND 2 * SUM(d) > 10",
            rs_catalog,
        )
        working = parse_query(
            "SELECT a FROM R, S WHERE a = c GROUP BY a, b, c "
            "HAVING c > b + 3 AND SUM(d * 2) > 10 AND a > 4",
            rs_catalog,
        )
        t_where, t_having = split_having(
            target.where, target.group_by, target.having
        )
        w_where, w_having = split_having(
            working.where, working.group_by, working.having
        )
        assert solver.is_equiv(t_where, w_where)
        analysis = analyze_having(
            t_where, working.group_by, target.group_by, w_having, t_having
        )
        assert having_equivalent(analysis, solver)

    def test_example3_redundant_having(self, rs_catalog, solver):
        # WHERE A>100 makes HAVING MAX(A)>=101 redundant (paper Example 3).
        target = parse_query(
            "SELECT b, COUNT(*) FROM R WHERE a > 100 GROUP BY b", rs_catalog
        )
        working = parse_query(
            "SELECT b, COUNT(*) FROM R WHERE a > 100 GROUP BY b "
            "HAVING MAX(a) >= 101",
            rs_catalog,
        )
        analysis = analyze_having(
            target.where,
            working.group_by,
            target.group_by,
            working.having,
            target.having,
        )
        assert having_equivalent(analysis, solver)

    def test_wrong_having_repaired(self, rs_catalog, solver):
        target = parse_query(
            "SELECT b FROM R GROUP BY b HAVING COUNT(*) >= 2", rs_catalog
        )
        working = parse_query(
            "SELECT b FROM R GROUP BY b HAVING COUNT(*) > 2", rs_catalog
        )
        analysis = analyze_having(
            target.where,
            working.group_by,
            target.group_by,
            working.having,
            target.having,
        )
        assert not having_equivalent(analysis, solver)
        result = repair_having(analysis, solver=solver)
        assert result.found
        repaired = result.repair.apply(analysis.working_scalar)
        assert solver.is_equiv(repaired, analysis.target_scalar, analysis.context)

    def test_split_having_moves_nonaggregate_conjuncts(self, rs_catalog):
        query = parse_query(
            "SELECT a FROM R GROUP BY a, b HAVING a > 1 AND COUNT(*) > 2 "
            "AND b < 5",
            rs_catalog,
        )
        where, having = split_having(query.where, query.group_by, query.having)
        assert all(atom.left.has_aggregate() for atom in having.atoms())
        moved = {str(a) for a in where.atoms()}
        assert "r.a > 1" in moved and "r.b < 5" in moved

    def test_count_distinct_not_conflated_with_count(self, rs_catalog, solver):
        target = parse_query(
            "SELECT b FROM R GROUP BY b HAVING COUNT(DISTINCT a) >= 2",
            rs_catalog,
        )
        working = parse_query(
            "SELECT b FROM R GROUP BY b HAVING COUNT(*) >= 2", rs_catalog
        )
        analysis = analyze_having(
            target.where,
            working.group_by,
            target.group_by,
            working.having,
            target.having,
        )
        assert not having_equivalent(analysis, solver)


class TestSelectStage:
    def test_positionally_equal(self, rs_catalog, solver):
        target = parse_query("SELECT a, b FROM R", rs_catalog)
        working = parse_query("SELECT a, b FROM R", rs_catalog)
        assert fix_select(working.select, target.select, (), solver).viable

    def test_equivalence_uses_where_context(self, rs_catalog, solver):
        # Under WHERE a=b, selecting a vs b is equivalent.
        target = parse_query("SELECT a FROM R WHERE a = b", rs_catalog)
        working = parse_query("SELECT b FROM R WHERE a = b", rs_catalog)
        delta = fix_select(
            working.select, target.select, (target.where,), solver
        )
        assert delta.viable

    def test_wrong_position_flagged(self, rs_catalog, solver):
        target = parse_query("SELECT a, b FROM R", rs_catalog)
        working = parse_query("SELECT b, a FROM R", rs_catalog)
        delta = fix_select(working.select, target.select, (), solver)
        assert delta.remove == [0, 1]
        assert delta.add == [0, 1]

    def test_arity_mismatch(self, rs_catalog, solver):
        target = parse_query("SELECT a, b FROM R", rs_catalog)
        working = parse_query("SELECT a FROM R", rs_catalog)
        delta = fix_select(working.select, target.select, (), solver)
        assert delta.add == [1]
        assert not delta.remove

    def test_apply_select_fix(self, rs_catalog, solver):
        target = parse_query("SELECT a, b FROM R", rs_catalog)
        working = parse_query("SELECT b, a, a + b FROM R", rs_catalog)
        delta = fix_select(working.select, target.select, (), solver)
        fixed = apply_select_fix(working.select, target.select, delta)
        assert list(fixed) == list(target.select)

    def test_aggregate_expressions_compared_normalized(self, rs_catalog, solver):
        target = parse_query(
            "SELECT b, 2 * SUM(a) FROM R GROUP BY b", rs_catalog
        )
        working = parse_query(
            "SELECT b, SUM(a * 2) FROM R GROUP BY b", rs_catalog
        )
        delta = fix_select(working.select, target.select, (), solver)
        assert delta.viable
