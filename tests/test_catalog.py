"""Tests for repro.catalog."""

import pytest

from repro.catalog import Catalog, Column, SqlType, Table


class TestSqlType:
    def test_numeric_flags(self):
        assert SqlType.INT.is_numeric
        assert SqlType.FLOAT.is_numeric
        assert not SqlType.STRING.is_numeric
        assert not SqlType.BOOL.is_numeric

    def test_join_same(self):
        assert SqlType.INT.join(SqlType.INT) == SqlType.INT
        assert SqlType.STRING.join(SqlType.STRING) == SqlType.STRING

    def test_join_numeric_promotion(self):
        assert SqlType.INT.join(SqlType.FLOAT) == SqlType.FLOAT
        assert SqlType.FLOAT.join(SqlType.INT) == SqlType.FLOAT

    def test_join_incompatible_raises(self):
        with pytest.raises(ValueError):
            SqlType.INT.join(SqlType.STRING)


class TestTable:
    def test_column_lookup_case_insensitive(self):
        table = Table("T", (Column("Alpha", SqlType.INT),))
        assert table.column("alpha").name == "Alpha"
        assert table.column("ALPHA") is not None
        assert table.column("beta") is None

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            Table("T", (Column("a", SqlType.INT), Column("A", SqlType.INT)))

    def test_column_names(self):
        table = Table("T", (Column("x", SqlType.INT), Column("y", SqlType.STRING)))
        assert table.column_names == ["x", "y"]


class TestCatalog:
    def test_from_spec_with_string_types(self):
        catalog = Catalog.from_spec({"T": [("a", "INT"), ("b", "string")]})
        table = catalog.table("t")
        assert table.column("a").type == SqlType.INT
        assert table.column("b").type == SqlType.STRING

    def test_from_spec_with_enum_types(self):
        catalog = Catalog.from_spec({"T": [("a", SqlType.FLOAT)]})
        assert catalog.table("T").column("a").type == SqlType.FLOAT

    def test_table_lookup_case_insensitive(self):
        catalog = Catalog.from_spec({"Likes": [("x", "INT")]})
        assert catalog.table("LIKES") is not None
        assert "likes" in catalog
        assert "nope" not in catalog

    def test_duplicate_table_rejected(self):
        catalog = Catalog.from_spec({"T": [("a", "INT")]})
        with pytest.raises(ValueError):
            catalog.add(Table("t", (Column("b", SqlType.INT),)))

    def test_iteration(self):
        catalog = Catalog.from_spec({"A": [("x", "INT")], "B": [("y", "INT")]})
        assert sorted(t.name for t in catalog) == ["A", "B"]
