"""Tests for the corpus subsystem: mutations, generation, evaluation."""

import json

import pytest

from repro.corpus import (
    CorpusGenerator,
    bundled_sources,
    evaluate_corpus,
    mutate_query,
)
from repro.corpus.mutations import STAGES, MutationRecord
from repro.service.cache import canonical_key
from repro.sqlparser.rewrite import parse_query_extended
from repro.workloads import beers, dblp, tpch


@pytest.fixture(scope="module")
def beers_cat():
    return beers.catalog()


@pytest.fixture(scope="module")
def dblp_cat():
    return dblp.catalog()


class TestMutateQuery:
    def test_deterministic_per_seed(self, beers_cat):
        target = parse_query_extended(beers.SOLUTION_B, beers_cat)
        a = mutate_query(target, beers_cat, num_errors=2, seed=17)
        b = mutate_query(target, beers_cat, num_errors=2, seed=17)
        assert a is not None and b is not None
        assert a.wrong.to_sql() == b.wrong.to_sql()
        assert a.mutations == b.mutations

    def test_wrong_differs_canonically(self, beers_cat):
        target = parse_query_extended(beers.SOLUTION_C, beers_cat)
        for seed in range(10):
            mutant = mutate_query(target, beers_cat, seed=seed)
            assert mutant is not None
            assert canonical_key(mutant.wrong) != canonical_key(mutant.correct)

    def test_mutants_reresolve(self, dblp_cat):
        # Every emitted mutant must be a well-formed query of the fragment.
        for question in dblp.QUESTIONS:
            target = parse_query_extended(question.correct_sql, dblp_cat)
            for seed in range(6):
                mutant = mutate_query(target, dblp_cat, num_errors=2, seed=seed)
                if mutant is None:
                    continue
                parse_query_extended(mutant.wrong.to_sql(), dblp_cat)

    def test_stage_restriction_honoured(self, beers_cat):
        target = parse_query_extended(beers.SOLUTION_B, beers_cat)
        for stage in ("WHERE", "SELECT", "FROM"):
            mutant = mutate_query(
                target, beers_cat, num_errors=1, seed=3, stages=(stage,)
            )
            assert mutant is not None
            assert set(m.stage for m in mutant.mutations) == {stage}

    def test_having_and_groupby_operators(self, beers_cat):
        target = parse_query_extended(beers.SOLUTION_D1, beers_cat)
        seen = set()
        for seed in range(20):
            mutant = mutate_query(
                target, beers_cat, num_errors=1, seed=seed,
                stages=("HAVING", "GROUP BY"),
            )
            if mutant is not None:
                seen.update(m.stage for m in mutant.mutations)
        assert "HAVING" in seen
        assert "GROUP BY" in seen

    def test_from_table_swap_on_dblp(self, dblp_cat):
        # conference_paper vs journal_paper share pubkey/title/year: the
        # classic join-table confusion must be producible.
        target = parse_query_extended(dblp.Q1.correct_sql, dblp_cat)
        kinds = set()
        for seed in range(25):
            mutant = mutate_query(
                target, dblp_cat, num_errors=1, seed=seed, stages=("FROM",)
            )
            if mutant is not None:
                kinds.update(m.kind for m in mutant.mutations)
        assert "wrong-table" in kinds

    def test_alias_confusion_on_self_join(self, beers_cat):
        target = parse_query_extended(beers.SOLUTION_D2, beers_cat)
        kinds = set()
        for seed in range(30):
            mutant = mutate_query(
                target, beers_cat, num_errors=1, seed=seed, stages=("WHERE",)
            )
            if mutant is not None:
                kinds.update(m.kind for m in mutant.mutations)
        assert "alias-confusion" in kinds

    def test_difficulty_scoring(self, beers_cat):
        target = parse_query_extended(beers.SOLUTION_B, beers_cat)
        single = mutate_query(target, beers_cat, num_errors=1, seed=1)
        assert single.difficulty == 1
        double = mutate_query(target, beers_cat, num_errors=2, seed=1)
        assert double.difficulty == 2 * len(double.stages)
        assert double.difficulty >= 2

    def test_record_shape(self, beers_cat):
        target = parse_query_extended(beers.SOLUTION_A, beers_cat)
        mutant = mutate_query(target, beers_cat, num_errors=1, seed=0)
        record = mutant.mutations[0]
        assert isinstance(record, MutationRecord)
        assert record.stage in STAGES
        payload = record.to_dict()
        assert set(payload) == {"stage", "kind", "site", "original"}


class TestCorpusGenerator:
    def test_deterministic(self):
        a = CorpusGenerator(schemas=("beers",), seed=4).generate_pool(6)
        b = CorpusGenerator(schemas=("beers",), seed=4).generate_pool(6)
        assert [e.wrong_sql for e in a] == [e.wrong_sql for e in b]
        assert [e.mutations for e in a] == [e.mutations for e in b]

    def test_entries_regenerable_from_their_seed(self):
        generator = CorpusGenerator(schemas=("beers",), seed=9)
        pool = generator.generate_pool(5)
        source = generator.sources[0]
        entry = pool[3]
        index = int(entry.seed.rsplit(":", 1)[1])
        again = generator.entry_for(
            source, entry.qid, entry.target_sql, index
        )
        assert again is not None
        assert again.wrong_sql == entry.wrong_sql

    def test_dedup_by_canonical_form(self):
        generator = CorpusGenerator(schemas=("beers",), seed=0)
        pool = generator.generate_pool(25)
        cat = beers.catalog()
        keys = set()
        for entry in pool:
            key = (
                entry.schema,
                canonical_key(parse_query_extended(entry.target_sql, cat)),
                canonical_key(parse_query_extended(entry.wrong_sql, cat)),
            )
            assert key not in keys
            keys.add(key)
        assert generator.duplicates > 0  # 25 seeds/query must collide some

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError):
            CorpusGenerator(schemas=("nope",))

    def test_bundled_sources_cover_every_schema(self):
        names = [s.name for s in bundled_sources()]
        assert names == ["beers", "brass", "dblp", "tpch", "userstudy"]
        for source in bundled_sources():
            assert source.targets, source.name
            catalog = source.catalog()
            for _, sql in source.targets:
                parse_query_extended(sql, catalog)

    def test_to_dict_round_trips_json(self):
        pool = CorpusGenerator(schemas=("beers",), seed=1).generate_pool(3)
        for entry in pool:
            payload = json.loads(json.dumps(entry.to_dict()))
            assert payload["schema"] == "beers"
            assert payload["mutations"]
            assert payload["difficulty"] == entry.difficulty


class TestEvaluateCorpus:
    @pytest.fixture(scope="class")
    def beers_eval(self):
        pool = CorpusGenerator(schemas=("beers",), seed=0).generate_pool(6)
        result = evaluate_corpus(
            pool, schemas=("beers",), processes=1, witness=True,
            witness_limit=4,
        )
        return pool, result

    def test_everything_grades(self, beers_eval):
        pool, result = beers_eval
        assert result.total == len(pool)
        assert result.errors == 0
        assert result.grade_success_rate == 1.0

    def test_hint_coverage_and_agreement(self, beers_eval):
        _, result = beers_eval
        assert result.hint_coverage >= 0.9
        assert result.stage_recall >= 0.9
        assert 0.0 <= result.stage_exact_rate <= 1.0

    def test_witness_subsample(self, beers_eval):
        _, result = beers_eval
        assert result.witness_attempted == 4
        assert result.witness_found >= 3

    def test_by_schema_and_kind_breakdowns(self, beers_eval):
        pool, result = beers_eval
        assert result.by_schema["beers"]["total"] == len(pool)
        assert sum(v["count"] for v in result.by_kind.values()) == sum(
            len(e.mutations) for e in pool
        )

    def test_to_dict_is_json_safe(self, beers_eval):
        _, result = beers_eval
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["grade_success_rate"] == 1.0
        assert payload["throughput"] > 0


class TestBenignMutants:
    """Regression tests for the residual hint-coverage misses.

    The full fixed-seed corpus (seed 0, 20 mutants/query) leaves six
    entries across the extra-column / wrong-column / missing-column kinds
    unflagged.  Triage showed every one is a *benign* mutation -- the
    recorded edit preserved semantics -- in exactly two classes:

    1. **qualification-only**: the mutation toggled ``col`` <->
       ``table.col`` spelling.  The recorder logs it as an
       extra/missing/wrong-column edit, but both spellings resolve to the
       same column, so the grader is right not to flag it.
    2. **join-equality swap**: the mutation substituted a column that the
       WHERE clause equates with the original (e.g. ``likes.drinker`` ->
       ``frequents.drinker`` under ``likes.drinker = frequents.drinker``),
       so every result row is unchanged.

    Each test pins one reproduced pair per mutation kind: the grader must
    keep recognizing the equivalence (``all_passed``), i.e. these misses
    stay documented-benign rather than regressing into false flags --
    or silently turning into real misses.
    """

    @staticmethod
    def _grade(schema, target_sql, wrong_sql):
        from repro.service.session import AssignmentSession

        source = {s.name: s for s in bundled_sources()}[schema]
        session = AssignmentSession(source.catalog(), target_sql)
        return session.grade(wrong_sql)

    def test_wrong_column_join_equality_swap(self):
        # ``frequents.drinker`` equals ``likes.drinker`` on every
        # surviving row by the WHERE join predicate, so projecting either
        # column yields identical results.
        report = self._grade(
            "beers",
            "SELECT likes.drinker FROM Likes, Frequents "
            "WHERE likes.beer = 'Corona' "
            "AND likes.drinker = frequents.drinker "
            "AND frequents.bar = 'James Joyce Pub' "
            "AND frequents.times_a_week >= 2",
            "SELECT frequents.drinker FROM Likes, Frequents "
            "WHERE (likes.beer = 'Corona' "
            "AND likes.drinker = frequents.drinker "
            "AND frequents.bar = 'James Joyce Pub' "
            "AND frequents.times_a_week >= 2)",
        )
        assert report.all_passed

    def test_extra_and_missing_column_qualification_only(self):
        # Recorded as an extra-column + missing-column pair, but the edit
        # only qualified ``beer``/``price`` with their (unambiguous)
        # table -- the resolved query is the same.
        report = self._grade(
            "brass",
            "SELECT beer FROM Serves WHERE price > 3",
            "SELECT serves.beer FROM Serves WHERE serves.price > 3",
        )
        assert report.all_passed

    def test_wrong_column_qualification_only(self):
        report = self._grade(
            "brass",
            "SELECT beer FROM Serves WHERE bar = 'James Joyce Pub'",
            "SELECT serves.beer FROM Serves "
            "WHERE serves.bar = 'James Joyce Pub'",
        )
        assert report.all_passed

    def test_missing_column_qualification_only_group_by(self):
        # Same qualification-only class through GROUP BY + aggregate.
        report = self._grade(
            "brass",
            "SELECT drinker, COUNT(*) FROM Likes GROUP BY drinker",
            "SELECT likes.drinker, COUNT(*) FROM Likes "
            "GROUP BY likes.drinker",
        )
        assert report.all_passed

    def test_join_equality_swap_with_constant_fold(self):
        # Two stacked equivalences: ``serves.bar`` <-> ``bar.name`` under
        # the join predicate ``bar.name = serves.bar``, and the literal
        # rewrite ``11/5`` == ``2.20``.
        report = self._grade(
            "brass",
            "SELECT name, address FROM Bar, Serves "
            "WHERE Bar.name = Serves.bar AND beer = 'Budweiser' "
            "AND price > 2.20",
            "SELECT serves.bar, bar.address FROM Bar, Serves "
            "WHERE (bar.name = serves.bar AND serves.beer = 'Budweiser' "
            "AND serves.price > 11/5)",
        )
        assert report.all_passed

    def test_by_kind_benign_accounting(self):
        # Every graded entry is either flagged or benign, per kind: the
        # by_kind breakdown must account for 100% of the mutations.
        pool = CorpusGenerator(schemas=("beers",), seed=0).generate_pool(6)
        result = evaluate_corpus(pool, schemas=("beers",), processes=1)
        assert result.errors == 0
        for kind, stats in result.by_kind.items():
            assert stats["flagged"] + stats["benign"] == stats["count"], kind
        assert result.flagged + result.benign == result.graded


class TestCorpusCli:
    def test_list_schemas(self, capsys):
        from repro.cli import main

        assert main(["corpus", "--list-schemas"]) == 0
        out = capsys.readouterr().out
        for name in ("beers", "brass", "dblp", "tpch", "userstudy"):
            assert name in out

    def test_generate_only_with_dump(self, tmp_path, capsys):
        from repro.cli import main

        dump = tmp_path / "corpus.jsonl"
        code = main(
            [
                "corpus", "--schemas", "beers", "--per-query", "3",
                "--generate-only", "--dump", str(dump),
            ]
        )
        assert code == 0
        lines = dump.read_text().splitlines()
        assert lines
        entry = json.loads(lines[0])
        assert entry["schema"] == "beers" and entry["mutations"]

    def test_end_to_end_eval(self, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "metrics.json"
        code = main(
            [
                "corpus", "--schemas", "beers", "--per-query", "3",
                "--processes", "1", "--json", str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hint coverage" in out
        payload = json.loads(out_path.read_text())
        assert payload["errors"] == 0
        assert payload["graded"] == payload["total"]

    def test_unknown_schema_is_an_error(self, capsys):
        from repro.cli import main

        assert main(["corpus", "--schemas", "bogus"]) == 2
        assert "error:" in capsys.readouterr().err


class TestTpchMutations:
    def test_tpch_where_mutants(self):
        cat = tpch.catalog()
        target = tpch.Q5.resolve(cat)
        mutant = mutate_query(target, cat, num_errors=2, seed=2,
                              stages=("WHERE",))
        assert mutant is not None
        assert all(m.stage == "WHERE" for m in mutant.mutations)
        parse_query_extended(mutant.wrong.to_sql(), cat)

    def test_tpch_nested_q7(self):
        cat = tpch.catalog()
        target = tpch.Q7_NESTED.resolve(cat)
        mutant = mutate_query(target, cat, num_errors=1, seed=5)
        assert mutant is not None
        parse_query_extended(mutant.wrong.to_sql(), cat)
