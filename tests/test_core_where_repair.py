"""Tests for RepairWhere (Algorithm 1) and the cost model (Definitions 2/3)."""

from fractions import Fraction

import pytest

from repro.core.cost import Repair, repair_cost, site_count_cost
from repro.core.where_repair import repair_where, verify_repair
from repro.logic.formulas import Comparison, conj, disj
from repro.logic.terms import const, intvar

A, B, C, D, E, F = (intvar(x) for x in "ABCDEF")


def cmp(op, lhs, rhs):
    return Comparison(op, lhs, rhs)


def example5():
    p_star = (cmp("=", A, C) & (cmp("<", E, const(5)) | cmp(">", D, const(10)) | cmp("<", D, const(7)))) | (
        cmp("=", A, B) & (cmp("<>", D, E) | cmp(">", D, F))
    )
    p = (cmp("=", A, C) & (cmp("<>", D, E) | cmp(">", D, F))) | (
        cmp("=", A, C)
        & (cmp(">", D, const(11)) | cmp("<", D, const(7)) | cmp("<=", E, const(5)))
    )
    return p, p_star


class TestCostModel:
    def test_example6_three_site_cost(self):
        # Example 6: sites (x4, x10, x12) with atomic fixes cost 0.75.
        p, p_star = example5()
        repair = Repair.of(
            {
                (0, 0): cmp("=", A, B),
                (1, 1, 0): cmp(">", D, const(10)),
                (1, 1, 2): cmp("<", E, const(5)),
            }
        )
        assert repair_cost(repair, p, p_star) == pytest.approx(0.75)

    def test_example6_trivial_root_repair_cost(self):
        p, p_star = example5()
        repair = Repair.of({(): p_star})
        assert repair_cost(repair, p, p_star) == pytest.approx(1 / 6 + 1.0)

    def test_example6_two_site_cost(self):
        # Sites (x5, x3) with the larger fixes: cost 2w + (4+3+5+6)/24.
        p, p_star = example5()
        fix_x5 = disj(
            cmp("<", E, const(5)), cmp(">", D, const(10)), cmp("<", D, const(7))
        )
        fix_x3 = cmp("=", A, B) & (cmp("<>", D, E) | cmp(">", D, F))
        repair = Repair.of({(0, 1): fix_x5, (1,): fix_x3})
        expected = 2 * (1 / 6) + ((3 + 4) + (6 + 5)) / 24  # ~1.08 in the paper
        assert repair_cost(repair, p, p_star) == pytest.approx(expected)

    def test_site_count_cost(self):
        assert site_count_cost(3) == pytest.approx(0.5)

    def test_repair_apply(self):
        p, _ = example5()
        repair = Repair.of({(0, 0): cmp("=", A, B)})
        assert repair.apply(p).atoms()[0] == cmp("=", A, B)

    def test_custom_weight(self):
        p, p_star = example5()
        repair = Repair.of({(): p_star})
        high = repair_cost(repair, p, p_star, weight=Fraction(1))
        low = repair_cost(repair, p, p_star, weight=Fraction(1, 100))
        assert high > low


class TestRepairWhere:
    def test_equivalent_inputs_trivial(self, solver):
        p = cmp("=", A, B) & cmp("<", C, const(5))
        p_star = cmp("<", C, const(5)) & cmp("=", B, A)
        result = repair_where(p, p_star, solver=solver)
        # A zero-distance repair may be found, but the first viable repair
        # should cost at most a single small site.
        assert result.found
        assert result.cost <= 1.0

    def test_single_error_conjunctive(self, solver):
        p = conj(cmp("=", A, B), cmp(">", C, const(5)), cmp("<", D, E))
        p_star = conj(cmp("=", A, B), cmp(">", C, const(9)), cmp("<", D, E))
        result = repair_where(p, p_star, solver=solver)
        assert result.found
        assert len(result.repair) == 1
        assert verify_repair(p, p_star, result.repair, solver)

    def test_two_errors_conjunctive(self, solver):
        p = conj(cmp("=", A, B), cmp(">", C, const(5)), cmp("<", D, E))
        p_star = conj(cmp("<>", A, B), cmp(">", C, const(5)), cmp("<=", D, E))
        result = repair_where(p, p_star, max_sites=2, solver=solver)
        assert result.found
        assert len(result.repair) == 2
        assert verify_repair(p, p_star, result.repair, solver)

    def test_optimized_beats_or_ties_plain(self, solver):
        p, p_star = example5()
        plain = repair_where(p, p_star, max_sites=3, solver=solver)
        optimized = repair_where(
            p, p_star, max_sites=3, optimized=True, solver=solver
        )
        assert optimized.cost <= plain.cost
        assert verify_repair(p, p_star, optimized.repair, solver)

    def test_missing_conjunct_repair(self, solver):
        # The working query lacks a join condition entirely.
        p = conj(cmp("=", A, const(1)), cmp(">", C, const(0)))
        p_star = conj(cmp("=", A, const(1)), cmp(">", C, const(0)), cmp("=", B, D))
        result = repair_where(p, p_star, solver=solver)
        assert result.found
        assert verify_repair(p, p_star, result.repair, solver)

    def test_trace_is_recorded(self, solver):
        p, p_star = example5()
        result = repair_where(p, p_star, max_sites=2, solver=solver)
        assert result.trace
        assert result.first_viable_elapsed is not None
        assert result.first_viable_elapsed <= result.elapsed
        # Trace entries are (time, cost) pairs in time order.
        times = [entry.elapsed for entry in result.trace]
        assert times == sorted(times)

    def test_best_cost_is_minimum_of_trace(self, solver):
        p, p_star = example5()
        result = repair_where(p, p_star, max_sites=2, solver=solver)
        assert result.cost == pytest.approx(min(e.cost for e in result.trace))

    def test_transitivity_no_spurious_repair(self, solver):
        # Likes.beer=s2.beer vs S1.beer=S2.beer under transitive equality
        # (Example 1): the predicates are equivalent, no repair needed.
        p = conj(cmp("=", A, B), cmp("=", A, C))
        p_star = conj(cmp("=", A, B), cmp("=", B, C))
        assert solver.is_equiv(p, p_star)

    def test_max_sites_respected(self, solver):
        p = conj(
            cmp("=", A, const(1)), cmp("=", B, const(2)), cmp("=", C, const(3))
        )
        p_star = conj(
            cmp("=", A, const(9)), cmp("=", B, const(8)), cmp("=", C, const(7))
        )
        result = repair_where(p, p_star, max_sites=1, solver=solver)
        assert result.found
        assert len(result.repair) == 1  # forced into one (larger) site
        assert verify_repair(p, p_star, result.repair, solver)
