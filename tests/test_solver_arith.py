"""Tests for the Fourier-Motzkin arithmetic theory solver."""

from fractions import Fraction

from repro.logic.linear import LinExpr, linearize
from repro.logic.terms import add, const, floatvar, intvar, mul, sub
from repro.solver.arith import Constraint, EQ, LE, LT, is_satisfiable


def lin(term):
    return linearize(term)


def le(term):  # term <= 0
    return Constraint(lin(term), LE)


def lt(term):  # term < 0
    return Constraint(lin(term), LT)


def eq(term):  # term = 0
    return Constraint(lin(term), EQ)


X, Y, Z = intvar("x"), intvar("y"), intvar("z")
F = floatvar("f")


class TestFeasibility:
    def test_empty_system_sat(self):
        assert is_satisfiable([])

    def test_single_bound_sat(self):
        assert is_satisfiable([le(sub(X, const(5)))])  # x <= 5

    def test_contradictory_bounds(self):
        # x <= 0 and x >= 1  (written as 1 - x <= 0)
        assert not is_satisfiable([le(X), le(sub(const(1), X))])

    def test_strict_cycle_unsat(self):
        # x < y and y < x
        assert not is_satisfiable([lt(sub(X, Y)), lt(sub(Y, X))])

    def test_transitive_chain(self):
        # x < y, y < z, z < x is unsat; dropping one constraint is sat.
        chain = [lt(sub(X, Y)), lt(sub(Y, Z)), lt(sub(Z, X))]
        assert not is_satisfiable(chain)
        assert is_satisfiable(chain[:2])

    def test_equality_substitution(self):
        # x = y, x <= 3, y >= 5 -> unsat
        system = [
            eq(sub(X, Y)),
            le(sub(X, const(3))),
            le(sub(const(5), Y)),
        ]
        assert not is_satisfiable(system)

    def test_inconsistent_equalities(self):
        # x = 1 and x = 2
        assert not is_satisfiable([eq(sub(X, const(1))), eq(sub(X, const(2)))])

    def test_scaled_equality(self):
        # 2x = 4 and x = 3 -> unsat; 2x = 4 and x = 2 -> sat
        assert not is_satisfiable(
            [eq(sub(mul(const(2), X), const(4))), eq(sub(X, const(3)))]
        )
        assert is_satisfiable(
            [eq(sub(mul(const(2), X), const(4))), eq(sub(X, const(2)))]
        )


class TestIntegerTightening:
    def test_no_integer_between(self):
        # 0 < x < 1 is unsat over INT variables.
        assert not is_satisfiable([lt(sub(const(0), X)), lt(sub(X, const(1)))])

    def test_rational_between_allowed_for_floats(self):
        # 0 < f < 1 is sat over FLOAT variables.
        assert is_satisfiable([lt(sub(const(0), F)), lt(sub(F, const(1)))])

    def test_gt_100_implies_ge_101(self):
        # x > 100 and x < 101 unsat over INT (the paper's Example 3 pattern).
        assert not is_satisfiable(
            [lt(sub(const(100), X)), lt(sub(X, const(101)))]
        )

    def test_non_integral_coeff_not_tightened(self):
        # 0 < x/2 < 1/2 has no INT solution (x=1 gives exactly 1/2? no: x/2 < 1/2 -> x < 1),
        # tightening applies after scaling: x > 0 and x < 1 -> unsat.
        assert not is_satisfiable(
            [
                lt(sub(const(0), mul(X, const(Fraction(1, 2))))),
                lt(sub(mul(X, const(Fraction(1, 2))), const(Fraction(1, 2)))),
            ]
        )


class TestDisequalities:
    def test_diseq_with_pinned_value(self):
        # x = 1 and x != 1 -> unsat
        assert not is_satisfiable([eq(sub(X, const(1)))], [lin(sub(X, const(1)))])

    def test_diseq_with_room(self):
        # x <= 5 and x != 5 -> sat
        assert is_satisfiable([le(sub(X, const(5)))], [lin(sub(X, const(5)))])

    def test_diseq_forced_by_squeeze(self):
        # 1 <= x <= 1 and x != 1 -> unsat
        system = [le(sub(X, const(1))), le(sub(const(1), X))]
        assert not is_satisfiable(system, [lin(sub(X, const(1)))])

    def test_diseq_between_vars(self):
        # x = y and x != y -> unsat
        assert not is_satisfiable([eq(sub(X, Y))], [lin(sub(X, Y))])

    def test_constant_diseq(self):
        assert is_satisfiable([], [LinExpr.of_const(3)])  # 3 != 0 holds
        assert not is_satisfiable([], [LinExpr.of_const(0)])  # 0 != 0 fails

    def test_multiple_independent_diseqs(self):
        # x != 0, y != 0 with no other constraints: sat.
        assert is_satisfiable([], [lin(X), lin(Y)])


class TestTightenedConstraint:
    def test_strict_integral_becomes_nonstrict(self):
        c = Constraint(lin(sub(X, Y)), LT).tightened()
        assert c.rel == LE
        assert c.expr.constant == 1

    def test_float_vars_not_tightened(self):
        c = Constraint(lin(sub(F, const(1))), LT).tightened()
        assert c.rel == LT
