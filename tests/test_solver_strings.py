"""Focused tests for the string theory (union-find equality + LIKE)."""

from repro.logic.terms import Const, strvar
from repro.solver.strings import UnionFind, check_strings

S, T, U = strvar("s"), strvar("t"), strvar("u")
AMY = Const.of("Amy")
BOB = Const.of("Bob")


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind()
        assert not uf.same(S, T)

    def test_union_and_find(self):
        uf = UnionFind()
        uf.union(S, T)
        assert uf.same(S, T)
        assert uf.find(S) == uf.find(T)

    def test_transitive_union(self):
        uf = UnionFind()
        uf.union(S, T)
        uf.union(T, U)
        assert uf.same(S, U)

    def test_path_compression_stable(self):
        uf = UnionFind()
        for pair in [(S, T), (T, U)]:
            uf.union(*pair)
        root = uf.find(S)
        assert uf.find(U) == root


class TestCheckStrings:
    def test_empty_is_sat(self):
        assert check_strings([], [], [])

    def test_equality_chain_with_conflicting_constants(self):
        assert not check_strings(
            [(S, AMY), (S, T), (T, BOB)], [], []
        )

    def test_consistent_constants(self):
        assert check_strings([(S, AMY), (T, AMY)], [], [])

    def test_disequality_of_same_class(self):
        assert not check_strings([(S, T)], [(S, T)], [])

    def test_disequality_of_equal_constants(self):
        assert not check_strings([(S, AMY), (T, AMY)], [(S, T)], [])

    def test_disequality_of_distinct_constants_ok(self):
        assert check_strings([(S, AMY), (T, BOB)], [(S, T)], [])

    def test_like_against_known_constant(self):
        assert check_strings([(S, AMY)], [], [(S, "A%", True)])
        assert not check_strings([(S, AMY)], [], [(S, "B%", True)])

    def test_not_like_against_known_constant(self):
        assert check_strings([(S, AMY)], [], [(S, "B%", False)])
        assert not check_strings([(S, AMY)], [], [(S, "A%", False)])

    def test_wildcard_free_like_binds_constant(self):
        # s LIKE 'Amy' pins s to 'Amy'; s = 'Bob' then contradicts.
        assert not check_strings([(S, BOB)], [], [(S, "Amy", True)])

    def test_not_like_match_everything_pattern(self):
        assert not check_strings([], [], [(S, "%", False)])
        assert not check_strings([], [], [(S, "%%", False)])

    def test_not_like_ordinary_pattern_sat(self):
        assert check_strings([], [], [(S, "A%", False)])

    def test_two_literal_patterns_conflict(self):
        # Two wildcard-free LIKEs with different texts pin s two ways.
        assert not check_strings([], [], [(S, "Amy", True), (S, "Bob", True)])

    def test_like_propagates_through_equality(self):
        # s = t, t = 'Amy', s LIKE 'B%' is unsat.
        assert not check_strings(
            [(S, T), (T, AMY)], [], [(S, "B%", True)]
        )

    def test_compatible_patterns_assumed_sat(self):
        # Incomplete-but-sound: two overlapping wildcard patterns -> SAT.
        assert check_strings([], [], [(S, "A%", True), (S, "%y", True)])
