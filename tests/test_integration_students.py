"""Integration: the full Students+ dataset through the pipeline.

Every unique wrong/target pair in the synthesized Students+ dataset must be
driven to a query that is differentially equivalent to its target --
Theorem 3.1's end-to-end guarantee, validated empirically by the engine.
"""

import pytest

from repro.core.pipeline import QrHint
from repro.engine import appear_equivalent
from repro.workloads import beers, brass


def unique_pairs():
    seen = set()
    for entry in beers.students_dataset():
        key = (entry.wrong_sql, entry.target_sql)
        if key not in seen:
            seen.add(key)
            yield entry


PAIRS = list(unique_pairs())


@pytest.mark.parametrize(
    "entry", PAIRS, ids=[f"{e.question}-{i}" for i, e in enumerate(PAIRS)]
)
def test_students_pair_converges(entry, beers_catalog):
    report = QrHint(beers_catalog, entry.target_sql, entry.wrong_sql).run()
    assert appear_equivalent(
        report.final_query, report.target_query, beers_catalog, trials=30
    ), report.final_query.to_sql()


@pytest.mark.parametrize("entry", PAIRS[:20])
def test_students_first_hint_targets_reported_clause(entry, beers_catalog):
    """The first failing stage should not come after the seeded clause."""
    stage_order = ["FROM", "WHERE", "GROUP BY", "HAVING", "SELECT"]
    report = QrHint(beers_catalog, entry.target_sql, entry.wrong_sql).run()
    failed = [s.stage for s in report.stages if not s.passed]
    assert failed, "a wrong query must fail at least one stage"
    # Stages run in order; the seeded clause can only be repaired at or
    # before its own stage (earlier stages may legitimately subsume it).
    assert stage_order.index(failed[0]) <= stage_order.index(entry.clause)


def test_brass_logical_examples_converge(beers_catalog):
    for issue in brass.issues_by_handling(brass.LOGICAL):
        if issue.working_sql is None:
            continue
        report = QrHint(
            beers_catalog, issue.reference_sql, issue.working_sql
        ).run()
        assert appear_equivalent(
            report.final_query, report.target_query, beers_catalog, trials=30
        ), f"issue {issue.number}"


def test_style_flagged_fixes_still_correct(beers_catalog):
    """Unnecessary fixes (Section 9.1 category 3) must still be sound."""
    for issue in brass.issues_by_handling(brass.STYLE_FLAG):
        if issue.working_sql is None:
            continue
        report = QrHint(
            beers_catalog, issue.reference_sql, issue.working_sql
        ).run()
        assert appear_equivalent(
            report.final_query, report.target_query, beers_catalog, trials=30
        ), f"issue {issue.number}"
