"""Tests for single-block rewrites (WITH / FROM subqueries) and the CLI."""

import json

import pytest

from repro.core.pipeline import QrHint
from repro.engine import appear_equivalent
from repro.errors import ParseError, UnsupportedSQLError
from repro.sqlparser import parse_query
from repro.sqlparser.rewrite import parse_extended, parse_query_extended


class TestFromSubqueryFlattening:
    def test_simple_subquery(self, beers_catalog):
        flattened = parse_query_extended(
            "SELECT x.beer FROM (SELECT beer, price FROM Serves "
            "WHERE bar = 'Joyce') x WHERE x.price > 2",
            beers_catalog,
        )
        plain = parse_query(
            "SELECT beer FROM Serves WHERE bar = 'Joyce' AND price > 2",
            beers_catalog,
        )
        assert len(flattened.from_entries) == 1
        assert appear_equivalent(flattened, plain, beers_catalog, trials=40)

    def test_subquery_join_with_base_table(self, beers_catalog):
        flattened = parse_query_extended(
            "SELECT likes.drinker FROM Likes, "
            "(SELECT beer FROM Serves WHERE price < 3) cheap "
            "WHERE likes.beer = cheap.beer",
            beers_catalog,
        )
        plain = parse_query(
            "SELECT likes.drinker FROM Likes, Serves "
            "WHERE serves.price < 3 AND likes.beer = serves.beer",
            beers_catalog,
        )
        assert appear_equivalent(flattened, plain, beers_catalog, trials=40)

    def test_nested_subqueries(self, beers_catalog):
        flattened = parse_query_extended(
            "SELECT y.b FROM (SELECT x.beer AS b FROM "
            "(SELECT beer FROM Serves WHERE price > 1) x) y",
            beers_catalog,
        )
        assert len(flattened.from_entries) == 1
        assert flattened.from_entries[0].table == "Serves"

    def test_select_alias_resolution(self, beers_catalog):
        flattened = parse_query_extended(
            "SELECT t.total FROM (SELECT price * 2 AS total FROM Serves) t "
            "WHERE t.total > 4",
            beers_catalog,
        )
        plain = parse_query(
            "SELECT price * 2 FROM Serves WHERE price * 2 > 4", beers_catalog
        )
        assert appear_equivalent(flattened, plain, beers_catalog, trials=40)

    def test_aggregating_subquery_rejected(self, beers_catalog):
        with pytest.raises(UnsupportedSQLError):
            parse_query_extended(
                "SELECT x.c FROM (SELECT COUNT(*) AS c FROM Serves) x",
                beers_catalog,
            )

    def test_distinct_subquery_rejected(self, beers_catalog):
        with pytest.raises(UnsupportedSQLError):
            parse_query_extended(
                "SELECT x.beer FROM (SELECT DISTINCT beer FROM Serves) x",
                beers_catalog,
            )

    def test_unaliased_subquery_rejected(self, beers_catalog):
        with pytest.raises(ParseError):
            parse_query_extended(
                "SELECT beer FROM (SELECT beer FROM Serves)", beers_catalog
            )

    def test_self_join_of_subqueries_gets_fresh_aliases(self, beers_catalog):
        flattened = parse_query_extended(
            "SELECT a.beer FROM (SELECT beer, price FROM Serves) a, "
            "(SELECT beer, price FROM Serves) b "
            "WHERE a.beer = b.beer AND a.price < b.price",
            beers_catalog,
        )
        assert len(flattened.from_entries) == 2
        assert len(set(flattened.aliases())) == 2


class TestWithClauses:
    def test_single_cte(self, beers_catalog):
        flattened = parse_query_extended(
            "WITH cheap AS (SELECT bar, beer, price FROM Serves WHERE price < 3) "
            "SELECT c.beer FROM cheap c, Likes WHERE likes.beer = c.beer",
            beers_catalog,
        )
        plain = parse_query(
            "SELECT s.beer FROM Serves s, Likes "
            "WHERE s.price < 3 AND likes.beer = s.beer",
            beers_catalog,
        )
        assert appear_equivalent(flattened, plain, beers_catalog, trials=40)

    def test_multiple_ctes(self, beers_catalog):
        flattened = parse_query_extended(
            "WITH a AS (SELECT beer FROM Serves WHERE price > 2), "
            "b AS (SELECT beer FROM Likes WHERE drinker = 'Amy') "
            "SELECT a.beer FROM a, b WHERE a.beer = b.beer",
            beers_catalog,
        )
        assert len(flattened.from_entries) == 2

    def test_aggregating_cte_rejected(self, beers_catalog):
        with pytest.raises(UnsupportedSQLError):
            parse_query_extended(
                "WITH counts AS (SELECT COUNT(*) AS c FROM Serves) "
                "SELECT counts.c FROM counts",
                beers_catalog,
            )

    def test_cte_default_alias_is_cte_name(self, beers_catalog):
        flattened = parse_extended(
            "WITH cheap AS (SELECT beer FROM Serves) "
            "SELECT cheap.beer FROM cheap"
        )
        assert flattened.from_tables[0].table == "Serves"

    def test_flattened_query_through_pipeline(self, beers_catalog):
        target = parse_query(
            "SELECT beer FROM Serves WHERE bar = 'Joyce' AND price > 2",
            beers_catalog,
        )
        working = parse_query_extended(
            "SELECT x.beer FROM (SELECT beer, price FROM Serves "
            "WHERE bar = 'Joyce') x WHERE x.price >= 2",
            beers_catalog,
        )
        report = QrHint(beers_catalog, target, working).run()
        assert appear_equivalent(
            report.final_query, report.target_query, beers_catalog, trials=40
        )


class TestCli:
    @pytest.fixture()
    def schema_file(self, tmp_path):
        path = tmp_path / "schema.json"
        path.write_text(
            json.dumps(
                {"Serves": [["bar", "STRING"], ["beer", "STRING"],
                            ["price", "FLOAT"]]}
            )
        )
        return str(path)

    def test_hints_printed(self, schema_file, capsys):
        from repro.cli import main

        code = main(
            [
                "--schema", schema_file,
                "--target-sql", "SELECT beer FROM Serves WHERE price > 2",
                "--working-sql", "SELECT beer FROM Serves WHERE price >= 2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "[WHERE]" in out
        assert "price" in out

    def test_equivalent_queries(self, schema_file, capsys):
        from repro.cli import main

        code = main(
            [
                "--schema", schema_file,
                "--target-sql", "SELECT beer FROM Serves WHERE price > 2",
                "--working-sql", "SELECT serves.beer FROM Serves WHERE 2 < price",
            ]
        )
        assert code == 0
        assert "already equivalent" in capsys.readouterr().out

    def test_verify_flag(self, schema_file, capsys):
        from repro.cli import main

        code = main(
            [
                "--schema", schema_file,
                "--target-sql", "SELECT beer FROM Serves WHERE price > 2",
                "--working-sql", "SELECT beer FROM Serves WHERE price < 2",
                "--verify",
            ]
        )
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_show_fixes(self, schema_file, capsys):
        from repro.cli import main

        main(
            [
                "--schema", schema_file,
                "--target-sql", "SELECT beer FROM Serves WHERE price > 2",
                "--working-sql", "SELECT beer FROM Serves WHERE price >= 2",
                "--show-fixes",
            ]
        )
        assert "fix:" in capsys.readouterr().out

    def test_parse_error_reported(self, schema_file, capsys):
        from repro.cli import main

        code = main(
            [
                "--schema", schema_file,
                "--target-sql", "SELECT beer FROM Serves",
                "--working-sql", "SELEKT nope",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_subquery_accepted_via_cli(self, schema_file, capsys):
        from repro.cli import main

        code = main(
            [
                "--schema", schema_file,
                "--target-sql", "SELECT beer FROM Serves WHERE price > 2",
                "--working-sql",
                "SELECT x.beer FROM (SELECT beer, price FROM Serves) x "
                "WHERE x.price > 2",
            ]
        )
        assert code == 0
