"""Tests for the CDCL-lite SAT core and Tseitin encoding."""

import itertools
import random
import sys

from repro.solver.sat import SatSolver, solve_cnf
from repro.solver.tseitin import CnfBuilder, assert_skeleton, encode


class TestSatSolver:
    def test_trivially_sat(self):
        assert solve_cnf([[1]]) == {1: True}

    def test_trivially_unsat(self):
        assert solve_cnf([[1], [-1]]) is None

    def test_unit_propagation_chain(self):
        # 1, 1->2, 2->3 forces all true.
        model = solve_cnf([[1], [-1, 2], [-2, 3]])
        assert model == {1: True, 2: True, 3: True}

    def test_requires_branching(self):
        # (1 v 2) & (-1 v 2) & (1 v -2): models must have 2 true.
        model = solve_cnf([[1, 2], [-1, 2], [1, -2]])
        assert model[2] is True and model[1] is True

    def test_pigeonhole_2_into_1_unsat(self):
        # Two pigeons, one hole: x1, x2, not both -> unsat with both forced.
        assert solve_cnf([[1], [2], [-1, -2]]) is None

    def test_tautological_clause_ignored(self):
        solver = SatSolver()
        solver.add_clause([1, -1])
        solver.add_clause([2])
        assert solver.solve()[2] is True

    def test_assumptions(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1])[2] is True
        assert solver.solve(assumptions=[-1, -2]) is None

    def test_conflicting_assumptions(self):
        solver = SatSolver()
        solver.ensure_vars(1)
        assert solver.solve(assumptions=[1, -1]) is None

    def test_incremental_clause_addition(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        model = solver.solve()
        assert model is not None
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert solver.solve() is None

    def test_unconstrained_vars_default_false(self):
        solver = SatSolver()
        solver.ensure_vars(3)
        solver.add_clause([1])
        model = solver.solve()
        assert model[2] is False and model[3] is False

    def test_3sat_random_consistency(self):
        # A small fixed 3-SAT instance with a known model.
        clauses = [[1, 2, 3], [-1, -2, 3], [1, -3, 4], [-4, 2, -1], [-2, -3, -4]]
        model = solve_cnf(clauses)
        assert model is not None
        for clause in clauses:
            assert any(model[abs(l)] == (l > 0) for l in clause)


def _brute_force(clauses, num_vars):
    """Reference: first satisfying model by exhaustive enumeration."""
    for bits in itertools.product([False, True], repeat=num_vars):
        model = {i + 1: bits[i] for i in range(num_vars)}
        if all(any(model[abs(l)] == (l > 0) for l in c) for c in clauses):
            return model
    return None


def _random_cnf(rng, num_vars, num_clauses):
    return [
        [rng.choice([1, -1]) * rng.randint(1, num_vars)
         for _ in range(rng.randint(1, 3))]
        for _ in range(num_clauses)
    ]


class TestFuzzAgainstBruteForce:
    def test_oneshot_fuzz(self):
        rng = random.Random(0xC0FFEE)
        for _ in range(300):
            n = rng.randint(1, 12)
            clauses = _random_cnf(rng, n, rng.randint(1, 4 * n))
            model = solve_cnf(clauses, n)
            reference = _brute_force(clauses, n)
            assert (model is None) == (reference is None), clauses
            if model is not None:
                assert set(model) == set(range(1, n + 1))
                for clause in clauses:
                    assert any(model[abs(l)] == (l > 0) for l in clause)

    def test_incremental_fuzz(self):
        # Interleave clause addition and assumption solves on one solver;
        # every answer must match a from-scratch brute force.
        rng = random.Random(0xFEED)
        for _ in range(100):
            n = rng.randint(2, 10)
            solver = SatSolver()
            solver.ensure_vars(n)
            accumulated = []
            for _ in range(rng.randint(2, 6)):
                for clause in _random_cnf(rng, n, rng.randint(1, 3)):
                    accumulated.append(clause)
                    solver.add_clause(clause)
                picked = rng.sample(range(1, n + 1), rng.randint(0, 2))
                assumptions = [rng.choice([1, -1]) * v for v in picked]
                model = solver.solve(assumptions)
                reference = _brute_force(
                    accumulated + [[a] for a in assumptions], n
                )
                assert (model is None) == (reference is None)
                if model is not None:
                    for clause in accumulated:
                        assert any(model[abs(l)] == (l > 0) for l in clause)
                    for lit in assumptions:
                        assert model[abs(lit)] == (lit > 0)


class TestIncrementalAssumptions:
    def test_assumptions_do_not_stick(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1, -2]) is None
        # The same instance must stay SAT without the assumptions.
        model = solver.solve()
        assert model is not None and (model[1] or model[2])

    def test_unsat_under_each_polarity_but_sat_overall(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        assert solver.solve(assumptions=[-2]) is None
        model = solver.solve(assumptions=[2])
        assert model is not None and model[2] is True

    def test_watches_and_learned_clauses_reused_across_calls(self):
        # Blocking-clause enumeration of all 8 models over 3 free vars: the
        # single solver instance must stay consistent for the whole run.
        solver = SatSolver()
        solver.ensure_vars(3)
        solver.add_clause([1, 2, 3, -1])  # tautology: vars exist, no constraint
        seen = set()
        while True:
            model = solver.solve()
            if model is None:
                break
            key = tuple(model[v] for v in (1, 2, 3))
            assert key not in seen, "blocking clause was ignored on reuse"
            seen.add(key)
            solver.add_clause(
                [-v if model[v] else v for v in (1, 2, 3)]
            )
        assert len(seen) == 8

    def test_learned_clauses_accumulate(self):
        # Pigeonhole PHP(3, 2) forces genuine conflicts: var 2(i-1)+j means
        # pigeon i sits in hole j.
        solver = SatSolver()
        var = lambda i, j: 2 * (i - 1) + j
        for i in (1, 2, 3):
            solver.add_clause([var(i, 1), var(i, 2)])
        for j in (1, 2):
            for i in (1, 2, 3):
                for k in range(i + 1, 4):
                    solver.add_clause([-var(i, j), -var(k, j)])
        assert solver.solve() is None
        assert solver.stats["conflicts"] >= 1
        assert solver.stats["learned_clauses"] >= 1
        # Once UNSAT, always UNSAT -- and no crash on reuse.
        assert solver.solve() is None

    def test_stats_counters_present(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        solver.solve()
        for key in ("solve_calls", "decisions", "propagations",
                    "conflicts", "learned_clauses"):
            assert key in solver.stats


class TestUnsatCore:
    def test_none_before_any_solve_and_after_sat(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        assert solver.unsat_core() is None
        assert solver.solve(assumptions=[1]) is not None
        assert solver.unsat_core() is None

    def test_core_excludes_irrelevant_assumptions(self):
        solver = SatSolver()
        solver.ensure_vars(6)
        solver.add_clause([-1, -2, 3])  # x1 & x2 -> x3
        solver.add_clause([-3, -4])  # x3 -> !x4
        assert solver.solve(assumptions=[1, 2, 5, 4]) is None
        core = solver.unsat_core()
        assert 4 in core
        assert 5 not in core  # x5 never touches the conflict
        assert set(core) <= {1, 2, 5, 4}

    def test_core_is_itself_unsat(self):
        solver = SatSolver()
        solver.ensure_vars(8)
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        solver.add_clause([-3, -1])  # x1 is self-defeating
        assert solver.solve(assumptions=[7, 8, 1]) is None
        core = solver.unsat_core()
        assert solver.solve(assumptions=list(core)) is None

    def test_db_level_unsat_has_empty_core(self):
        solver = SatSolver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve(assumptions=[2]) is None
        assert solver.unsat_core() == ()

    def test_contradictory_assumption_pair(self):
        solver = SatSolver()
        solver.ensure_vars(3)
        solver.add_clause([1, 2, 3])
        assert solver.solve(assumptions=[2, -2]) is None
        assert set(solver.unsat_core()) == {2, -2}

    def test_assumption_conflicting_with_db_alone(self):
        solver = SatSolver()
        solver.add_clause([-1])
        assert solver.solve(assumptions=[1, 2]) is None
        assert solver.unsat_core() == (1,)

    def test_core_counters(self):
        solver = SatSolver()
        solver.add_clause([-1])
        assert solver.stats["assumption_cores"] == 0
        assert solver.solve(assumptions=[1]) is None
        assert solver.stats["assumption_cores"] == 1
        assert solver.stats["core_literals"] == 1

    def test_core_after_conflict_driven_search(self):
        # PHP(3,2) plus a free pigeon-selection variable pool: any solve
        # under assumptions must fail and name a core within them.
        solver = SatSolver()
        var = lambda i, j: 2 * (i - 1) + j
        for i in (1, 2, 3):
            solver.add_clause([var(i, 1), var(i, 2)])
        for j in (1, 2):
            for i in (1, 2, 3):
                for k in range(i + 1, 4):
                    solver.add_clause([-var(i, j), -var(k, j)])
        solver.ensure_vars(10)
        assert solver.solve(assumptions=[9, 10]) is None
        # The database alone is UNSAT: no assumption is to blame.
        assert solver.unsat_core() == ()


class TestNonRecursive:
    def test_deep_propagation_chain_is_iterative(self):
        # A 3000-step implication chain would blow the recursion limit in
        # a recursive DPLL; the iterative trail must not care.
        n = 3000
        solver = SatSolver()
        solver.add_clause([1])
        for v in range(1, n):
            solver.add_clause([-v, v + 1])
        limit = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(80)
            model = solver.solve()
        finally:
            sys.setrecursionlimit(limit)
        assert model is not None
        assert all(model[v] for v in range(1, n + 1))

    def test_deep_decision_stack_is_iterative(self):
        # No propagation at all: 600 free variables means 600 nested
        # decisions, which must be a loop rather than recursion.
        solver = SatSolver()
        solver.ensure_vars(600)
        limit = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(80)
            model = solver.solve()
        finally:
            sys.setrecursionlimit(limit)
        assert model is not None and len(model) == 600


class TestFirstUipMachinery:
    """Restarts, clause-DB reduction, minimization, and model snapshots."""

    def _php(self, holes):
        # Pigeonhole holes+1 into holes: UNSAT with real conflict pressure.
        clauses = []
        var = lambda i, j: i * holes + j + 1
        for i in range(holes + 1):
            clauses.append([var(i, j) for j in range(holes)])
        for j in range(holes):
            for i in range(holes + 1):
                for k in range(i + 1, holes + 1):
                    clauses.append([-var(i, j), -var(k, j)])
        return clauses, (holes + 1) * holes

    def test_restarts_fire_and_preserve_unsat(self):
        clauses, n = self._php(5)
        solver = SatSolver(restart_base=1)  # Luby restarts almost per conflict
        solver.ensure_vars(n)
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve() is None
        assert solver.stats["restarts"] >= 1

    def test_clause_db_reduction_fires_and_stays_correct(self):
        clauses, n = self._php(5)
        solver = SatSolver(reduce_base=20)  # force aggressive deletion
        solver.ensure_vars(n)
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve() is None
        assert solver.stats["deleted_clauses"] > 0

    def test_minimization_counter_fires(self):
        clauses, n = self._php(5)
        solver = SatSolver()
        solver.ensure_vars(n)
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve() is None
        assert solver.stats["minimized_literals"] > 0

    def test_learned_clause_is_not_a_decision_cut(self):
        # First-UIP learning must keep learned clauses no longer than the
        # decision cut; on PHP it learns strictly shorter clauses, which
        # shows the analysis actually resolves on antecedents.
        clauses, n = self._php(4)
        solver = SatSolver()
        solver.ensure_vars(n)
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve() is None
        learned = solver._learned_clauses
        assert learned, "expected learned clauses on PHP"
        assert min(len(c) for c in learned) <= 4

    def test_model_snapshot_after_sat_following_unsat(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        assert solver.solve(assumptions=[-2]) is None
        assert solver.model() is None  # UNSAT clears the snapshot
        model = solver.solve()
        assert model is not None and model[2] is True
        snapshot = solver.model()
        assert snapshot == model
        # Adding clauses must not invalidate the snapshot ...
        solver.add_clause([3, 4])
        assert solver.model() == snapshot
        # ... and mutating the returned dicts must not either.
        model[2] = False
        assert solver.model()[2] is True

    def test_stats_has_new_counters(self):
        solver = SatSolver()
        solver.add_clause([1])
        solver.solve()
        for key in ("restarts", "deleted_clauses", "minimized_literals"):
            assert key in solver.stats


class TestStressedFuzzAgainstBruteForce:
    """The oneshot/incremental fuzz, with restarts + reduction forced on."""

    def test_oneshot_fuzz_with_tiny_restart_and_reduce_limits(self):
        rng = random.Random(0xD1CE)
        for _ in range(150):
            n = rng.randint(1, 12)
            clauses = _random_cnf(rng, n, rng.randint(1, 4 * n))
            solver = SatSolver(restart_base=1, reduce_base=4)
            solver.ensure_vars(n)
            for clause in clauses:
                solver.add_clause(clause)
            model = solver.solve()
            reference = _brute_force(clauses, n)
            assert (model is None) == (reference is None), clauses
            if model is not None:
                for clause in clauses:
                    assert any(model[abs(l)] == (l > 0) for l in clause)

    def test_growing_assumption_prefix_fuzz(self):
        # The trail-reuse fast path: repeated solves under assumption lists
        # that extend each other, interleaved with clause additions.
        rng = random.Random(0xBEEF)
        for _ in range(60):
            n = rng.randint(3, 10)
            solver = SatSolver(restart_base=2, reduce_base=6)
            solver.ensure_vars(n)
            accumulated = []
            pool = [rng.choice([1, -1]) * v
                    for v in rng.sample(range(1, n + 1), rng.randint(1, n))]
            for clause in _random_cnf(rng, n, rng.randint(2, 3 * n)):
                accumulated.append(clause)
                solver.add_clause(clause)
            previous_sat = True
            for length in range(len(pool) + 1):
                assumptions = pool[:length]
                model = solver.solve(assumptions)
                reference = _brute_force(
                    accumulated + [[a] for a in assumptions], n
                )
                assert (model is None) == (reference is None), (
                    accumulated, assumptions
                )
                if model is not None:
                    for clause in accumulated:
                        assert any(model[abs(l)] == (l > 0) for l in clause)
                    for lit in assumptions:
                        assert model[abs(lit)] == (lit > 0)
                    assert previous_sat, "SAT after UNSAT on a larger prefix"
                previous_sat = model is not None
                if rng.random() < 0.3:
                    extra = _random_cnf(rng, n, 1)[0]
                    accumulated.append(extra)
                    solver.add_clause(extra)
                    previous_sat = True  # the instance changed; reset

    def test_model_enumeration_under_reduction_never_repeats(self):
        # Blocking-clause enumeration with an aggressive reduction cap:
        # deleting conflict-learned clauses must never re-admit a model
        # blocked by a (permanent) blocking clause.
        solver = SatSolver(reduce_base=2)
        solver.ensure_vars(4)
        seen = set()
        while True:
            model = solver.solve()
            if model is None:
                break
            key = tuple(model[v] for v in range(1, 5))
            assert key not in seen, "a deleted blocking clause re-admitted a model"
            seen.add(key)
            solver.add_clause([-v if model[v] else v for v in range(1, 5)])
        assert len(seen) == 16


class TestTseitin:
    def _solve_skeleton(self, skeleton, num_lit_vars):
        builder = CnfBuilder(num_vars=num_lit_vars)
        assert_skeleton(skeleton, builder)
        solver = SatSolver()
        solver.ensure_vars(builder.num_vars)
        for clause in builder.clauses:
            solver.add_clause(clause)
        return solver

    def test_and_forces_children(self):
        solver = self._solve_skeleton(("and", [("lit", 1), ("lit", 2)]), 2)
        model = solver.solve()
        assert model[1] and model[2]

    def test_or_needs_one_child(self):
        solver = self._solve_skeleton(("or", [("lit", 1), ("lit", 2)]), 2)
        assert solver.solve(assumptions=[-1])[2] is True
        assert solver.solve(assumptions=[-1, -2]) is None

    def test_not_inverts(self):
        solver = self._solve_skeleton(("not", ("lit", 1)), 1)
        assert solver.solve()[1] is False

    def test_nested_structure(self):
        # (1 & 2) | (!1 & 3)
        skeleton = (
            "or",
            [
                ("and", [("lit", 1), ("lit", 2)]),
                ("and", [("not", ("lit", 1)), ("lit", 3)]),
            ],
        )
        solver = self._solve_skeleton(skeleton, 3)
        assert solver.solve(assumptions=[1, -2]) is None
        assert solver.solve(assumptions=[-1, 3]) is not None

    def test_single_child_junction_passthrough(self):
        builder = CnfBuilder(num_vars=1)
        lit = encode(("and", [("lit", 1)]), builder)
        assert lit == 1
