"""Tests for the DPLL SAT core and Tseitin encoding."""

from repro.solver.sat import SatSolver, solve_cnf
from repro.solver.tseitin import CnfBuilder, assert_skeleton, encode


class TestSatSolver:
    def test_trivially_sat(self):
        assert solve_cnf([[1]]) == {1: True}

    def test_trivially_unsat(self):
        assert solve_cnf([[1], [-1]]) is None

    def test_unit_propagation_chain(self):
        # 1, 1->2, 2->3 forces all true.
        model = solve_cnf([[1], [-1, 2], [-2, 3]])
        assert model == {1: True, 2: True, 3: True}

    def test_requires_branching(self):
        # (1 v 2) & (-1 v 2) & (1 v -2): models must have 2 true.
        model = solve_cnf([[1, 2], [-1, 2], [1, -2]])
        assert model[2] is True and model[1] is True

    def test_pigeonhole_2_into_1_unsat(self):
        # Two pigeons, one hole: x1, x2, not both -> unsat with both forced.
        assert solve_cnf([[1], [2], [-1, -2]]) is None

    def test_tautological_clause_ignored(self):
        solver = SatSolver()
        solver.add_clause([1, -1])
        solver.add_clause([2])
        assert solver.solve()[2] is True

    def test_assumptions(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1])[2] is True
        assert solver.solve(assumptions=[-1, -2]) is None

    def test_conflicting_assumptions(self):
        solver = SatSolver()
        solver.ensure_vars(1)
        assert solver.solve(assumptions=[1, -1]) is None

    def test_incremental_clause_addition(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        model = solver.solve()
        assert model is not None
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert solver.solve() is None

    def test_unconstrained_vars_default_false(self):
        solver = SatSolver()
        solver.ensure_vars(3)
        solver.add_clause([1])
        model = solver.solve()
        assert model[2] is False and model[3] is False

    def test_3sat_random_consistency(self):
        # A small fixed 3-SAT instance with a known model.
        clauses = [[1, 2, 3], [-1, -2, 3], [1, -3, 4], [-4, 2, -1], [-2, -3, -4]]
        model = solve_cnf(clauses)
        assert model is not None
        for clause in clauses:
            assert any(model[abs(l)] == (l > 0) for l in clause)


class TestTseitin:
    def _solve_skeleton(self, skeleton, num_lit_vars):
        builder = CnfBuilder(num_vars=num_lit_vars)
        assert_skeleton(skeleton, builder)
        solver = SatSolver()
        solver.ensure_vars(builder.num_vars)
        for clause in builder.clauses:
            solver.add_clause(clause)
        return solver

    def test_and_forces_children(self):
        solver = self._solve_skeleton(("and", [("lit", 1), ("lit", 2)]), 2)
        model = solver.solve()
        assert model[1] and model[2]

    def test_or_needs_one_child(self):
        solver = self._solve_skeleton(("or", [("lit", 1), ("lit", 2)]), 2)
        assert solver.solve(assumptions=[-1])[2] is True
        assert solver.solve(assumptions=[-1, -2]) is None

    def test_not_inverts(self):
        solver = self._solve_skeleton(("not", ("lit", 1)), 1)
        assert solver.solve()[1] is False

    def test_nested_structure(self):
        # (1 & 2) | (!1 & 3)
        skeleton = (
            "or",
            [
                ("and", [("lit", 1), ("lit", 2)]),
                ("and", [("not", ("lit", 1)), ("lit", 3)]),
            ],
        )
        solver = self._solve_skeleton(skeleton, 3)
        assert solver.solve(assumptions=[1, -2]) is None
        assert solver.solve(assumptions=[-1, 3]) is not None

    def test_single_child_junction_passthrough(self):
        builder = CnfBuilder(num_vars=1)
        lit = encode(("and", [("lit", 1)]), builder)
        assert lit == 1
