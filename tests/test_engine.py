"""Tests for the relational engine (bag semantics, grouping, aggregates)."""

from fractions import Fraction

import pytest

from repro.engine import (
    Database,
    DataGenerator,
    appear_equivalent,
    bag_equal,
    cross_product,
    differential_check,
    execute,
    filtered_rows,
    grouped_rows,
)
from repro.sqlparser import parse_query


@pytest.fixture()
def db(beers_catalog):
    return Database(
        beers_catalog,
        {
            "Likes": [("Amy", "Bud"), ("Amy", "Corona"), ("Bob", "Bud")],
            "Frequents": [("Amy", "Joyce", 3), ("Bob", "Joyce", 1)],
            "Serves": [
                ("Joyce", "Bud", 3),
                ("Joyce", "Corona", 4),
                ("Taproom", "Bud", 2),
            ],
        },
    )


class TestDatabase:
    def test_row_coercion(self, beers_catalog):
        db = Database(beers_catalog, {"Serves": [("Joyce", "Bud", 2.5)]})
        row = db.rows("serves")[0]
        assert row["price"] == Fraction(5, 2)

    def test_dict_rows(self, beers_catalog):
        db = Database(
            beers_catalog, {"Likes": [{"drinker": "Amy", "beer": "Bud"}]}
        )
        assert db.rows("Likes")[0]["drinker"] == "Amy"

    def test_arity_mismatch(self, beers_catalog):
        with pytest.raises(ValueError):
            Database(beers_catalog, {"Likes": [("Amy",)]})

    def test_unknown_table(self, beers_catalog):
        with pytest.raises(KeyError):
            Database(beers_catalog, {"Nope": []})

    def test_duplicates_preserved(self, beers_catalog):
        db = Database(beers_catalog, {"Likes": [("Amy", "Bud")] * 3})
        assert len(db.rows("Likes")) == 3


class TestExecution:
    def test_selection(self, beers_catalog, db):
        q = parse_query("SELECT beer FROM Serves WHERE bar = 'Joyce'", beers_catalog)
        assert sorted(execute(q, db)) == [("Bud",), ("Corona",)]

    def test_cross_product_size(self, beers_catalog, db):
        q = parse_query("SELECT likes.beer FROM Likes, Serves", beers_catalog)
        # cross_product streams environments (generator), so materialize.
        assert len(list(cross_product(q, db))) == 9

    def test_join(self, beers_catalog, db):
        q = parse_query(
            "SELECT likes.drinker, serves.bar FROM Likes, Serves "
            "WHERE likes.beer = serves.beer",
            beers_catalog,
        )
        rows = execute(q, db)
        assert ("Amy", "Joyce") in rows
        assert ("Amy", "Taproom") in rows

    def test_bag_semantics_duplicates(self, beers_catalog, db):
        q = parse_query("SELECT drinker FROM Likes WHERE beer = 'Bud'", beers_catalog)
        assert sorted(execute(q, db)) == [("Amy",), ("Bob",)]
        q2 = parse_query("SELECT beer FROM Likes", beers_catalog)
        assert len(execute(q2, db)) == 3  # duplicates kept

    def test_distinct(self, beers_catalog, db):
        q = parse_query("SELECT DISTINCT beer FROM Likes", beers_catalog)
        assert sorted(execute(q, db)) == [("Bud",), ("Corona",)]

    def test_projection_expression(self, beers_catalog, db):
        q = parse_query(
            "SELECT price * 2 FROM Serves WHERE bar = 'Taproom'", beers_catalog
        )
        assert execute(q, db) == [(Fraction(4),)]

    def test_group_by_count(self, beers_catalog, db):
        q = parse_query(
            "SELECT beer, COUNT(*) FROM Likes GROUP BY beer", beers_catalog
        )
        assert sorted(execute(q, db)) == [("Bud", 2), ("Corona", 1)]

    def test_aggregates_sum_avg_min_max(self, beers_catalog, db):
        q = parse_query(
            "SELECT SUM(price), AVG(price), MIN(price), MAX(price) "
            "FROM Serves WHERE beer = 'Bud'",
            beers_catalog,
        )
        (row,) = execute(q, db)
        assert row == (5, Fraction(5, 2), 2, 3)

    def test_count_distinct(self, beers_catalog, db):
        q = parse_query("SELECT COUNT(DISTINCT beer) FROM Serves", beers_catalog)
        assert execute(q, db) == [(2,)]

    def test_having_filters_groups(self, beers_catalog, db):
        q = parse_query(
            "SELECT beer FROM Likes GROUP BY beer HAVING COUNT(*) >= 2",
            beers_catalog,
        )
        assert execute(q, db) == [("Bud",)]

    def test_aggregate_no_groups_on_empty_input(self, beers_catalog):
        empty = Database(beers_catalog, {"Likes": []})
        q = parse_query("SELECT COUNT(*) FROM Likes", beers_catalog)
        # SQL would return one row (0); the paper's fragment treats the
        # empty input as producing no groups, which our engine mirrors.
        assert execute(q, empty) == []

    def test_filtered_rows_envs(self, beers_catalog, db):
        q = parse_query(
            "SELECT beer FROM Serves WHERE price >= 3", beers_catalog
        )
        envs = list(filtered_rows(q, db))
        assert len(envs) == 2
        assert all(env["serves.price"] >= 3 for env in envs)

    def test_grouped_rows_partition(self, beers_catalog, db):
        q = parse_query(
            "SELECT beer, COUNT(*) FROM Likes GROUP BY beer", beers_catalog
        )
        groups = grouped_rows(q, db)
        sizes = {key[0]: len(envs) for key, envs in groups}
        assert sizes == {"Bud": 2, "Corona": 1}

    def test_rank_query_from_example_1(self, beers_catalog):
        db = Database(
            beers_catalog,
            {
                "Likes": [("Amy", "Bud")],
                "Frequents": [("Amy", "Joyce", 1), ("Amy", "Taproom", 1)],
                "Serves": [("Joyce", "Bud", 3), ("Taproom", "Bud", 2)],
            },
        )
        q = parse_query(
            "SELECT L.beer, S1.bar, COUNT(*) "
            "FROM Likes L, Frequents F, Serves S1, Serves S2 "
            "WHERE L.drinker = F.drinker AND F.bar = S1.bar AND L.beer = S1.beer "
            "AND S1.beer = S2.beer AND S1.price <= S2.price "
            "GROUP BY F.drinker, L.beer, S1.bar HAVING F.drinker = 'Amy'",
            beers_catalog,
        )
        rows = sorted(execute(q, db))
        assert rows == [("Bud", "Joyce", 1), ("Bud", "Taproom", 2)]


class TestBagEqual:
    def test_order_insensitive(self):
        assert bag_equal([(1,), (2,)], [(2,), (1,)])

    def test_multiplicity_sensitive(self):
        assert not bag_equal([(1,), (1,)], [(1,)])

    def test_value_types(self):
        assert bag_equal([(Fraction(2),)], [(Fraction(4, 2),)])


class TestDataGenAndDiff:
    def test_generator_is_deterministic(self, beers_catalog):
        a = DataGenerator(beers_catalog, seed=7).random_instance()
        b = DataGenerator(beers_catalog, seed=7).random_instance()
        assert {k: v for k, v in a.tables.items()} == {
            k: v for k, v in b.tables.items()
        }

    def test_generator_respects_max_rows(self, beers_catalog):
        db = DataGenerator(beers_catalog, seed=1, max_rows=2).random_instance()
        assert all(len(rows) <= 2 for rows in db.tables.values())

    def test_explicit_seed_ignores_shared_stream_position(self, beers_catalog):
        # random_instance(seed=...) must be a pure function of the seed,
        # independent of how much of the shared stream was consumed.
        fresh = DataGenerator(beers_catalog, seed=3)
        consumed = DataGenerator(beers_catalog, seed=3)
        consumed.random_instance()  # burn shared-stream state
        a = fresh.random_instance(seed="probe")
        b = consumed.random_instance(seed="probe")
        assert a.tables == b.tables

    def test_instances_batch_matches_individual_calls(self, beers_catalog):
        # instances(count, seed) derives per-index seeds, so trial i of a
        # run can be regenerated without replaying the stream up to it.
        generator = DataGenerator(beers_catalog, seed=0)
        batch = list(generator.instances(4, seed="run"))
        for index, db in enumerate(batch):
            lone = DataGenerator(beers_catalog, seed=99).random_instance(
                seed=f"run:{index}"
            )
            assert db.tables == lone.tables

    def test_instances_same_seed_identical_across_calls(self, beers_catalog):
        generator = DataGenerator(beers_catalog, seed=5)
        first = [db.tables for db in generator.instances(3, seed="s")]
        second = [db.tables for db in generator.instances(3, seed="s")]
        assert first == second

    def test_differential_detects_difference(self, beers_catalog):
        q1 = parse_query("SELECT beer FROM Serves WHERE price > 2", beers_catalog)
        q2 = parse_query("SELECT beer FROM Serves WHERE price > 3", beers_catalog)
        assert differential_check(q1, q2, beers_catalog, trials=30) is not None

    def test_differential_passes_equivalent(self, beers_catalog):
        q1 = parse_query("SELECT beer FROM Serves WHERE price > 2", beers_catalog)
        q2 = parse_query(
            "SELECT beer FROM Serves WHERE 2 < price", beers_catalog
        )
        assert appear_equivalent(q1, q2, beers_catalog, trials=30)

    def test_differential_catches_duplicate_semantics(self, beers_catalog):
        q1 = parse_query("SELECT beer FROM Likes", beers_catalog)
        q2 = parse_query("SELECT DISTINCT beer FROM Likes", beers_catalog)
        assert not appear_equivalent(q1, q2, beers_catalog, trials=30)
