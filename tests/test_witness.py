"""Tests for the counterexample witness subsystem and its integrations."""

import http.client
import json
import threading

import pytest

from repro.catalog import Catalog
from repro.engine.database import Database
from repro.engine.datagen import DataGenerator
from repro.engine.executor import bag_equal, execute
from repro.service import AssignmentSession, grade_batch, make_server
from repro.service.cache import canonicalize, rename_query_aliases
from repro.solver import Solver
from repro.sqlparser.rewrite import parse_query_extended
from repro.witness import (
    Witness,
    format_witness_lines,
    generate_witness,
    results_differ,
    shrink_instance,
    witness_to_dict,
)
from repro.witness.divergence import single_row_term
from repro.workloads import dblp


def _witness_db(witness, catalog):
    """Rebuild a Database from the emitted witness tables."""
    return Database(
        catalog,
        {name: [list(row) for row in rows] for name, _, rows in witness.tables},
    )


def _parse(sql, catalog):
    return parse_query_extended(sql, catalog)


class TestSingleRowSpecialization:
    def test_aggregates_collapse(self, beers_catalog):
        query = _parse(
            "SELECT bar, COUNT(*), SUM(price), MAX(price) FROM Serves "
            "GROUP BY bar HAVING COUNT(DISTINCT beer) <= 1",
            beers_catalog,
        )
        count_star, sum_price, max_price = query.select[1:]
        assert str(single_row_term(count_star)) == "1"
        assert str(single_row_term(sum_price)) == "serves.price"
        assert str(single_row_term(max_price)) == "serves.price"


class TestGenerateWitness:
    def test_where_boundary_found_by_model(self, beers_catalog):
        target = _parse("SELECT beer FROM Serves WHERE price > 2", beers_catalog)
        wrong = _parse("SELECT beer FROM Serves WHERE price >= 2", beers_catalog)
        witness = generate_witness(beers_catalog, target, wrong, solver=Solver())
        assert witness is not None
        assert witness.source == "model"
        assert witness.stage == "WHERE"
        # The divergence needs a row exactly on the boundary.
        [(_, columns, rows)] = witness.tables
        price = rows[0][columns.index("price")]
        assert price == 2

    def test_witness_is_executor_verified(self, beers_catalog):
        target = _parse("SELECT beer FROM Serves WHERE price > 2", beers_catalog)
        wrong = _parse("SELECT beer FROM Serves WHERE price >= 2", beers_catalog)
        witness = generate_witness(beers_catalog, target, wrong, solver=Solver())
        database = _witness_db(witness, beers_catalog)
        assert not bag_equal(execute(wrong, database), execute(target, database))
        assert list(map(tuple, execute(wrong, database))) == list(
            witness.wrong_result
        )
        assert list(map(tuple, execute(target, database))) == list(
            witness.target_result
        )

    def test_count_distinct_needs_augmentation(self, beers_catalog):
        target = _parse(
            "SELECT bar, COUNT(DISTINCT beer) FROM Serves GROUP BY bar",
            beers_catalog,
        )
        wrong = _parse(
            "SELECT bar, COUNT(*) FROM Serves GROUP BY bar", beers_catalog
        )
        witness = generate_witness(beers_catalog, target, wrong, solver=Solver())
        assert witness is not None
        assert witness.source == "model"
        database = _witness_db(witness, beers_catalog)
        assert not bag_equal(execute(wrong, database), execute(target, database))

    def test_equivalent_queries_yield_none(self, beers_catalog):
        target = _parse("SELECT beer FROM Serves WHERE price > 2", beers_catalog)
        same = _parse("SELECT beer FROM Serves WHERE 2 < price", beers_catalog)
        assert generate_witness(
            beers_catalog, target, same, solver=Solver(), trials=50
        ) is None

    def test_from_mismatch_labelled_from(self, beers_catalog):
        target = _parse(
            "SELECT s.beer FROM Serves s, Likes l WHERE s.beer = l.beer",
            beers_catalog,
        )
        wrong = _parse("SELECT beer FROM Serves", beers_catalog)
        witness = generate_witness(beers_catalog, target, wrong, solver=Solver())
        assert witness is not None
        assert witness.stage == "FROM"

    def test_deterministic_per_seed(self, dblp_catalog):
        question = dblp.Q4
        target = _parse(question.correct_sql, dblp_catalog)
        wrong = _parse(question.wrong_sql, dblp_catalog)
        first = generate_witness(dblp_catalog, target, wrong, solver=Solver())
        second = generate_witness(dblp_catalog, target, wrong, solver=Solver())
        assert first == second

    @pytest.mark.parametrize("question", dblp.QUESTIONS, ids=lambda q: q.qid)
    def test_userstudy_questions_covered(self, dblp_catalog, question):
        target = _parse(question.correct_sql, dblp_catalog)
        wrong = _parse(question.wrong_sql, dblp_catalog)
        witness = generate_witness(dblp_catalog, target, wrong, solver=Solver())
        assert witness is not None
        assert witness.max_rows <= 3
        database = _witness_db(witness, dblp_catalog)
        assert not bag_equal(execute(wrong, database), execute(target, database))

    def test_rendering_roundtrips(self, beers_catalog):
        target = _parse("SELECT beer FROM Serves WHERE price > 2", beers_catalog)
        wrong = _parse("SELECT beer FROM Serves WHERE price >= 2", beers_catalog)
        witness = generate_witness(beers_catalog, target, wrong, solver=Solver())
        payload = witness_to_dict(witness)
        assert json.dumps(payload)  # JSON-safe
        assert payload["stage"] == "WHERE"
        lines = format_witness_lines(witness)
        assert any("Serves" in line or "serves" in line for line in lines)


class TestShrinker:
    def test_shrinks_to_local_minimum(self, beers_catalog):
        target = _parse("SELECT beer FROM Serves WHERE price > 2", beers_catalog)
        wrong = _parse("SELECT beer FROM Serves WHERE price >= 2", beers_catalog)
        bloated = Database(
            beers_catalog,
            {
                "Serves": [
                    ("b1", "ipa", 2), ("b2", "lager", 5),
                    ("b3", "stout", 1), ("b4", "pils", 2),
                ],
                "Likes": [("amy", "ipa")],
                "Frequents": [],
            },
        )

        def diverges(db):
            return results_differ(wrong, target, db)

        assert diverges(bloated)
        shrunk = shrink_instance(bloated, diverges)
        assert diverges(shrunk)
        assert sum(len(r) for r in shrunk.tables.values()) == 1
        [row] = shrunk.rows("serves")
        assert row["price"] == 2


class TestSessionWitness:
    TARGET = "SELECT beer FROM Serves WHERE price > 2"
    WRONG = "SELECT beer FROM Serves WHERE price >= 2"

    def test_grade_attaches_witness(self, beers_catalog):
        session = AssignmentSession(beers_catalog, self.TARGET)
        result = session.grade(self.WRONG, witness=True)
        assert isinstance(result.witness, Witness)
        assert result.witness.stage == "WHERE"
        assert "witness" in result.to_dict()
        assert "Counterexample instance" in result.text()

    def test_witness_cached_across_duplicates_and_aliases(self, beers_catalog):
        session = AssignmentSession(beers_catalog, self.TARGET)
        first = session.grade(self.WRONG, witness=True)
        second = session.grade(
            "select  BEER from serves WHERE price >= 2", witness=True
        )
        third = session.grade(
            "SELECT x.beer FROM Serves x WHERE x.price >= 2", witness=True
        )
        assert session.witness_runs == 1
        assert first.witness == second.witness
        # Same tables; only the alias-qualified assignment labels differ.
        assert third.witness.tables == first.witness.tables

    def test_no_witness_generation_for_correct_submission(self, beers_catalog):
        session = AssignmentSession(beers_catalog, self.TARGET)
        result = session.grade(self.TARGET, witness=True)
        assert result.all_passed and result.witness is None
        assert session.witness_runs == 0

    def test_negative_result_cached(self, beers_catalog):
        # A wrong-but-unwitnessable pair: force failure via trials budget by
        # reusing an equivalent-but-differently-written pair graded wrong at
        # the DISTINCT stage.
        session = AssignmentSession(
            beers_catalog, "SELECT DISTINCT beer FROM Serves"
        )
        sql = "SELECT beer FROM Serves"
        first = session.grade(sql, witness=True)
        second = session.grade(sql, witness=True)
        assert session.witness_runs == 1
        assert first.witness == second.witness

    def test_disabled_witness_keeps_output_identical(self, beers_catalog):
        plain = AssignmentSession(beers_catalog, self.TARGET)
        enabled = AssignmentSession(beers_catalog, self.TARGET)
        without = plain.grade(self.WRONG)
        with_witness = enabled.grade(self.WRONG, witness=True)
        assert without.witness is None
        assert "witness" not in without.to_dict()
        # The hint payloads agree exactly; only the witness rides along.
        stripped = dict(with_witness.to_dict())
        stripped.pop("witness")
        base = without.to_dict()
        base.pop("elapsed"), stripped.pop("elapsed")
        assert base == stripped
        assert with_witness.text().startswith(without.text())

    def test_batch_results_carry_no_witness(self, beers_catalog):
        batch = grade_batch(
            beers_catalog, self.TARGET, [self.WRONG, self.WRONG], processes=1
        )
        assert all(result.witness is None for result in batch.results)


class TestAliasRoundTrips:
    def test_student_alias_colliding_with_canonical_prefix(self, beers_catalog):
        # The student's own alias is literally `_s1` on the FIRST entry:
        # canonicalization must still be invertible.
        query = _parse(
            "SELECT _s1.beer FROM Serves _s1, Likes _s0 "
            "WHERE _s1.beer = _s0.beer AND _s1.price >= 2",
            beers_catalog,
        )
        canonical, mapping = canonicalize(query)
        assert mapping == {"_s1": "_s0", "_s0": "_s1"}
        inverse = {canon: orig for orig, canon in mapping.items()}
        assert rename_query_aliases(canonical, inverse) == query

    def test_swapped_canonical_aliases_roundtrip(self, beers_catalog):
        query = _parse(
            "SELECT _s0.beer FROM Likes _s2, Serves _s0 "
            "WHERE _s0.beer = _s2.beer",
            beers_catalog,
        )
        canonical, mapping = canonicalize(query)
        inverse = {canon: orig for orig, canon in mapping.items()}
        assert rename_query_aliases(canonical, inverse) == query

    def test_hints_rendered_in_submitter_namespace(self, beers_catalog):
        session = AssignmentSession(
            beers_catalog, "SELECT s.beer FROM Serves s WHERE s.price > 2"
        )
        result = session.grade(
            "SELECT _s7.beer FROM Serves _s7 WHERE _s7.price >= 2"
        )
        assert any("_s7.price" in h.message for h in result.hints)
        assert "_s0" not in result.final_sql

    def test_witness_assignments_survive_inverse_remap(self, beers_catalog):
        session = AssignmentSession(
            beers_catalog, "SELECT s.beer FROM Serves s WHERE s.price > 2"
        )
        result = session.grade(
            "SELECT mytab.beer FROM Serves mytab WHERE mytab.price >= 2",
            witness=True,
        )
        assert result.witness is not None
        assert any(a.startswith("mytab.price") for a in result.witness.assignments)
        assert not any("_s0" in a for a in result.witness.assignments)

    def test_witness_remap_handles_canonical_style_submitter_alias(
        self, beers_catalog
    ):
        session = AssignmentSession(
            beers_catalog, "SELECT s.beer FROM Serves s WHERE s.price > 2"
        )
        result = session.grade(
            "SELECT _s3.beer FROM Serves _s3 WHERE _s3.price >= 2",
            witness=True,
        )
        assert any(a.startswith("_s3.price") for a in result.witness.assignments)


class TestDatagenSeeding:
    def test_explicit_instance_seed_is_stream_independent(self, beers_catalog):
        fresh = DataGenerator(beers_catalog, seed=0)
        consumed = DataGenerator(beers_catalog, seed=0)
        list(consumed.instances(5))  # advance the shared stream
        a = fresh.random_instance(seed=42)
        b = consumed.random_instance(seed=42)
        assert a.tables == b.tables

    def test_seeded_instances_reproducible(self, beers_catalog):
        gen = DataGenerator(beers_catalog, seed=0)
        first = [db.tables for db in gen.instances(3, seed=7)]
        second = [db.tables for db in gen.instances(3, seed=7)]
        assert first == second

    def test_witness_seed_threaded_through(self, beers_catalog):
        target = _parse("SELECT beer FROM Serves WHERE price > 2", beers_catalog)
        wrong = _parse("SELECT beer FROM Serves WHERE price >= 2", beers_catalog)
        a = generate_witness(beers_catalog, target, wrong, solver=Solver(), seed=9)
        b = generate_witness(beers_catalog, target, wrong, solver=Solver(), seed=9)
        assert a == b


SCHEMA = {"Serves": [["bar", "STRING"], ["beer", "STRING"], ["price", "FLOAT"]]}
TARGET = "SELECT beer FROM Serves WHERE price > 2"
WRONG = "SELECT beer FROM Serves WHERE price >= 2"


@pytest.fixture()
def witness_server():
    server = make_server(port=0)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield host, port
    finally:
        server.shutdown()
        server.server_close()


def _post(host, port, path, payload):
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.request(
            "POST", path, json.dumps(payload).encode(),
            {"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def _raw_post(host, port, path, headers, body=b""):
    """POST with full control over headers (to omit/malform Content-Length)."""
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.putrequest("POST", path)
        for name, value in headers.items():
            conn.putheader(name, value)
        conn.endheaders()
        if body:
            conn.send(body)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


class TestHttpWitness:
    def _create(self, host, port):
        status, body = _post(
            host, port, "/assignments",
            {"schema": SCHEMA, "target_sql": TARGET},
        )
        assert status == 201
        return body["assignment_id"]

    def test_witness_endpoint(self, witness_server):
        host, port = witness_server
        aid = self._create(host, port)
        status, body = _post(
            host, port, "/witness", {"assignment_id": aid, "sql": WRONG}
        )
        assert status == 200
        assert body["found"] and not body["all_passed"]
        assert body["witness"]["stage"] == "WHERE"
        assert body["witness"]["tables"][0]["rows"]

    def test_witness_endpoint_correct_submission(self, witness_server):
        host, port = witness_server
        aid = self._create(host, port)
        status, body = _post(
            host, port, "/witness", {"assignment_id": aid, "sql": TARGET}
        )
        assert status == 200
        assert body["all_passed"] and not body["found"]
        assert body["witness"] is None

    def test_witness_endpoint_unknown_assignment_404(self, witness_server):
        host, port = witness_server
        status, body = _post(
            host, port, "/witness", {"assignment_id": "missing", "sql": WRONG}
        )
        assert status == 404
        assert "missing" in body["error"]

    def test_grade_accepts_witness_flag(self, witness_server):
        host, port = witness_server
        aid = self._create(host, port)
        status, body = _post(
            host, port, "/grade",
            {"assignment_id": aid, "sql": WRONG, "witness": True},
        )
        assert status == 200
        assert body["witness"]["stage"] == "WHERE"
        status, body = _post(
            host, port, "/grade", {"assignment_id": aid, "sql": WRONG}
        )
        assert status == 200
        assert "witness" not in body


class TestHttpHardening:
    def test_oversized_body_413(self, witness_server):
        host, port = witness_server
        status, body = _raw_post(
            host, port, "/grade",
            {"Content-Length": str(50_000_000),
             "Content-Type": "application/json"},
        )
        assert status == 413
        assert "too large" in body["error"]

    def test_malformed_content_length_400(self, witness_server):
        host, port = witness_server
        status, body = _raw_post(
            host, port, "/grade",
            {"Content-Length": "not-a-number",
             "Content-Type": "application/json"},
        )
        assert status == 400
        assert "malformed Content-Length" in body["error"]

    def test_negative_content_length_400(self, witness_server):
        host, port = witness_server
        status, body = _raw_post(
            host, port, "/grade",
            {"Content-Length": "-5", "Content-Type": "application/json"},
        )
        assert status == 400
        assert "malformed Content-Length" in body["error"]

    def test_absent_content_length_400(self, witness_server):
        host, port = witness_server
        status, body = _raw_post(
            host, port, "/grade", {"Content-Type": "application/json"}
        )
        assert status == 400
        assert "missing Content-Length" in body["error"]

    def test_server_survives_hardening_rejections(self, witness_server):
        host, port = witness_server
        _raw_post(host, port, "/grade", {"Content-Length": "bogus"})
        status, body = _post(
            host, port, "/assignments",
            {"schema": SCHEMA, "target_sql": TARGET},
        )
        assert status == 201
