"""Tests for the SMT facade (the paper's three Z3 primitives)."""

from repro.logic.formulas import Comparison, FALSE, TRUE, conj, disj, neg
from repro.logic.terms import add, const, div, intvar, mul, strvar
from repro.solver import Solver

A, B, C = intvar("A"), intvar("B"), intvar("C")
S, T = strvar("S"), strvar("T")


def cmp(op, lhs, rhs):
    return Comparison(op, lhs, rhs)


class TestSatisfiability:
    def test_true_and_false(self, solver):
        assert solver.is_satisfiable(TRUE)
        assert solver.is_unsatisfiable(FALSE)

    def test_simple_atom(self, solver):
        assert solver.is_satisfiable(cmp(">", A, const(0)))

    def test_contradiction(self, solver):
        f = cmp("<", A, B) & cmp("<", B, A)
        assert solver.is_unsatisfiable(f)

    def test_atom_and_negation(self, solver):
        atom = cmp("=", A, B)
        assert solver.is_unsatisfiable(atom & neg(atom))

    def test_three_way_transitivity(self, solver):
        f = cmp("<", A, B) & cmp("<", B, C) & cmp("<", C, A)
        assert solver.is_unsatisfiable(f)

    def test_boolean_structure(self, solver):
        # (A>0 or A<0) and A=0 is unsat.
        f = (cmp(">", A, const(0)) | cmp("<", A, const(0))) & cmp("=", A, const(0))
        assert solver.is_unsatisfiable(f)

    def test_context_constrains(self, solver):
        context = [cmp(">", A, const(10))]
        assert solver.is_unsatisfiable(cmp("<", A, const(5)), context)
        assert solver.is_satisfiable(cmp("<", A, const(50)), context)


class TestValidityAndEquivalence:
    def test_excluded_middle(self, solver):
        assert solver.is_valid(cmp("<=", A, B) | cmp(">", A, B))

    def test_equiv_syntactic_variants(self, solver):
        left = cmp("=", add(A, const(1)), add(B, const(1)))
        right = cmp("=", A, B)
        assert solver.is_equiv(left, right)

    def test_equiv_scaled_inequality(self, solver):
        left = cmp("<=", mul(const(2), A), mul(const(2), B))
        right = cmp("<=", A, B)
        assert solver.is_equiv(left, right)

    def test_equiv_flipped_sides(self, solver):
        assert solver.is_equiv(cmp("<", A, B), cmp(">", B, A))

    def test_not_equiv(self, solver):
        assert not solver.is_equiv(cmp("<", A, B), cmp("<=", A, B))

    def test_integer_tightening_equiv(self, solver):
        # A > 100 <=> A >= 101 over INT (paper Example 3's key inference).
        assert solver.is_equiv(cmp(">", A, const(100)), cmp(">=", A, const(101)))

    def test_equiv_under_context(self, solver):
        # Under A = C: C > B+3 <=> A > B+3 (paper Example 10).
        context = [cmp("=", A, C)]
        assert solver.is_equiv(
            cmp(">", C, add(B, const(3))),
            cmp(">", A, add(B, const(3))),
            context,
        )

    def test_transitivity_of_equality(self, solver):
        # A=B and B=C entails A=C (Example 1's redundancy pattern).
        f = cmp("=", A, B) & cmp("=", B, C)
        assert solver.entails(f, cmp("=", A, C))

    def test_entails_via_arithmetic(self, solver):
        f = cmp("<=", A, B) & cmp("<=", B, div(C, const(2)))
        assert solver.entails(f, cmp("<=", mul(const(2), A), C))

    def test_in_bound(self, solver):
        lower = cmp("=", A, const(5))
        formula = cmp(">=", A, const(5))
        upper = cmp(">=", A, const(0))
        assert solver.in_bound(lower, formula, upper)
        assert not solver.in_bound(formula, lower, upper)


class TestTermsEqual:
    def test_identical_terms(self, solver):
        assert solver.terms_equal(A, A)

    def test_arithmetic_identity(self, solver):
        assert solver.terms_equal(add(A, A), mul(const(2), A))

    def test_under_context(self, solver):
        context = [cmp("=", A, B)]
        assert solver.terms_equal(A, B, context)
        assert not solver.terms_equal(A, B)

    def test_type_mismatch(self, solver):
        assert not solver.terms_equal(A, S)

    def test_string_constants(self, solver):
        assert solver.terms_equal(const("x"), const("x"))
        assert not solver.terms_equal(const("x"), const("y"))


class TestStrings:
    def test_string_equality_chain(self, solver):
        f = cmp("=", S, T) & cmp("=", T, const("Amy")) & cmp("<>", S, const("Amy"))
        assert solver.is_unsatisfiable(f)

    def test_like_consistent_with_equality(self, solver):
        f = cmp("LIKE", S, const("Eve%")) & cmp("=", S, const("Evelyn"))
        assert solver.is_satisfiable(f)

    def test_like_inconsistent_with_equality(self, solver):
        f = cmp("LIKE", S, const("Eve%")) & cmp("=", S, const("Adam"))
        assert solver.is_unsatisfiable(f)

    def test_wildcard_free_like_is_equality(self, solver):
        assert solver.is_equiv(cmp("LIKE", S, const("Amy")), cmp("=", S, const("Amy")))

    def test_not_like_everything_pattern(self, solver):
        assert solver.is_unsatisfiable(cmp("NOT LIKE", S, const("%")))

    def test_distinct_constants(self, solver):
        assert solver.is_unsatisfiable(
            cmp("=", S, const("a")) & cmp("=", S, const("b"))
        )


class TestCaching:
    def test_repeat_call_hits_cache(self):
        local = Solver()
        f = cmp("<", A, B) & cmp("<", B, A)
        assert local.is_unsatisfiable(f)
        before = local.stats["cache_hits"]
        assert local.is_unsatisfiable(f)
        assert local.stats["cache_hits"] == before + 1

    def test_theory_cache_hits_are_counted(self):
        local = Solver()
        from repro.solver.atoms import canonicalize

        lit = canonicalize(cmp("<", A, B))
        literals = ((lit.atom, lit.positive),)
        assert local._theory_ok(literals)
        calls = local.stats["theory_calls"]
        assert local._theory_ok(literals)
        assert local.stats["theory_calls"] == calls  # served from cache
        assert local.stats["theory_cache_hits"] >= 1

    def test_reset_stats_clears_theory_caches(self):
        local = Solver()
        assert local.is_satisfiable(cmp("<", A, B) & cmp("<", B, C))
        assert local._theory_cache
        local.reset_stats()
        assert not local._theory_cache
        assert not local._core_cache
        assert all(value == 0 for value in local.stats.values())
        # The primitive verdict cache survives (pure function of formula).
        before = local.stats["sat_calls"]
        assert local.is_satisfiable(cmp("<", A, B) & cmp("<", B, C))
        assert local.stats["sat_calls"] == before
        assert local.stats["cache_hits"] == 1

    def test_stats_snapshot_has_new_counters(self):
        local = Solver()
        local.is_satisfiable(cmp("<", A, B))
        snapshot = local.stats_snapshot()
        for key in ("restarts", "clauses_deleted", "literals_minimized",
                    "theory_cache_hits", "cache_hit_rate",
                    "unsat_cores", "unsat_core_literals"):
            assert key in snapshot

    def test_feasibility_session_counts_unsat_cores(self):
        local = Solver()
        atoms = [cmp("<", A, B), cmp("<", B, A), cmp("<", A, C)]
        session = local.feasibility_session(atoms, ())
        # Assignment 0b011 asserts A < B and B < A: infeasible; the SAT
        # core fails under assumptions and records a failed-assumption core.
        assert not session.feasible_prefix(0b11, 2)
        assert local.stats["unsat_cores"] >= 1
        assert local.stats["unsat_core_literals"] >= 1


class TestFeasibilitySession:
    def test_matches_one_shot_primitive(self):
        local = Solver()
        atoms = [
            cmp(">", A, const(3)),
            cmp("<", A, const(10)),
            cmp(">=", B, const(2)),
        ]
        context = (disj(cmp(">", A, const(5)), cmp("<", B, const(0))),)
        session = local.feasibility_session(atoms, context)
        for assignment in range(8):
            for length in range(4):
                literals = [
                    atoms[i] if assignment & (1 << i) else neg(atoms[i])
                    for i in range(length)
                ]
                expected = local.is_satisfiable(conj(*literals), context)
                assert session.feasible_prefix(assignment, length) == expected

    def test_unsatisfiable_context_is_always_infeasible(self):
        local = Solver()
        atoms = [cmp(">", A, const(0))]
        context = (cmp("<", A, B) & cmp("<", B, A),)
        session = local.feasibility_session(atoms, context)
        assert not session.feasible_prefix(0, 0)
        assert not session.feasible_prefix(1, 1)

    def test_lemmas_accumulate_across_queries(self):
        local = Solver()
        atoms = [cmp("<", A, B), cmp("<", B, C), cmp("<", C, A)]
        session = local.feasibility_session(atoms, ())
        # All three cycle literals together are theory-infeasible ...
        assert not session.feasible_prefix(0b111, 3)
        # ... and the lemma persists in the same session's SAT core.
        assert session._sat._learned_clauses
        assert session.feasible_prefix(0b011, 2)
