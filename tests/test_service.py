"""Tests for the service layer: cache, sessions, batch grading, HTTP API."""

import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.pipeline import grade
from repro.errors import ParseError
from repro.service import (
    ArtifactCache,
    AssignmentSession,
    GradeError,
    canonical_key,
    canonicalize,
    grade_batch,
    make_server,
)
from repro.service.session import format_report
from repro.sqlparser.rewrite import parse_query_extended
from repro.witness import witness_to_dict
from repro.workloads import dblp, userstudy

TARGET = "SELECT beer FROM Serves WHERE price > 2"
WRONG = "SELECT beer FROM Serves WHERE price >= 2"


class TestArtifactCache:
    def test_hit_miss_counters(self):
        cache = ArtifactCache(maxsize=4)
        assert cache.get("k") is None
        cache.put("k", "v")
        assert cache.get("k") == "v"
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = ArtifactCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b is now LRU
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            ArtifactCache(maxsize=0)


class TestCanonicalization:
    def test_formatting_variants_share_key(self, beers_catalog):
        a = parse_query_extended(WRONG, beers_catalog)
        b = parse_query_extended(
            "select  BEER\n  from serves\n  WHERE  price >= 2", beers_catalog
        )
        assert canonical_key(a) == canonical_key(b)

    def test_alpha_equivalent_aliases_share_key(self, beers_catalog):
        a = parse_query_extended(
            "SELECT x.beer FROM Serves x WHERE x.price >= 2", beers_catalog
        )
        b = parse_query_extended(
            "SELECT y.beer FROM Serves y WHERE y.price >= 2", beers_catalog
        )
        assert canonical_key(a) == canonical_key(b)
        assert a != b  # only the canonical forms coincide

    def test_different_predicates_differ(self, beers_catalog):
        a = parse_query_extended(WRONG, beers_catalog)
        b = parse_query_extended(
            "SELECT beer FROM Serves WHERE price > 3", beers_catalog
        )
        assert canonical_key(a) != canonical_key(b)

    def test_canonicalize_is_structure_preserving(self, beers_catalog):
        # Or-of-Ands must keep its exact nesting: the repaired query is
        # rendered back to the submitter through the inverse rename.
        sql = ("SELECT v.beer FROM Serves v WHERE "
               "(v.bar = 'Joyce' AND v.price > 2) OR "
               "(v.bar = 'Taproom' AND v.price > 3)")
        query = parse_query_extended(sql, beers_catalog)
        canonical, mapping = canonicalize(query)
        assert mapping == {"v": "_s0"}
        from repro.service.cache import rename_query_aliases

        inverse = {"_s0": "v"}
        assert rename_query_aliases(canonical, inverse) == query


class TestAssignmentSession:
    def test_duplicate_submission_is_cached(self, beers_catalog):
        session = AssignmentSession(beers_catalog, TARGET)
        first = session.grade(WRONG)
        second = session.grade("select  beer from serves WHERE price >= 2")
        assert not first.cached and second.cached
        assert first.text() == second.text()
        assert session.cache.stats()["hits"] == 1
        assert session.pipeline_runs == 1

    def test_remap_leaves_string_literals_alone(self, beers_catalog):
        # A submission may contain the canonical alias spelling as *data*;
        # hints quote the student's literal verbatim.
        session = AssignmentSession(
            beers_catalog, "SELECT s.beer FROM Serves s WHERE s.bar = 'Joe'"
        )
        result = session.grade("SELECT x.beer FROM Serves x WHERE x.bar = '_s0'")
        assert "x.bar = '_s0'" in result.text()
        direct = format_report(
            grade(
                beers_catalog,
                "SELECT s.beer FROM Serves s WHERE s.bar = 'Joe'",
                "SELECT x.beer FROM Serves x WHERE x.bar = '_s0'",
            )
        )
        assert result.text() == direct

    def test_alpha_hit_remaps_to_submitter_aliases(self, beers_catalog):
        session = AssignmentSession(beers_catalog, TARGET)
        session.grade("SELECT x.beer FROM Serves x WHERE x.price >= 2")
        result = session.grade("SELECT y.beer FROM Serves y WHERE y.price >= 2")
        assert result.cached
        text = result.text()
        assert "y.price" in text
        assert "x.price" not in text and "_s0" not in text

    def test_from_repair_alias_collision_disambiguated(self, beers_catalog):
        # The FROM repair adds the missing Likes table under a fresh alias
        # chosen in the canonical namespace; mapping _s0 back to the
        # submitter's alias 'likes' must not collide with it (that would
        # merge the two FROM entries and turn the join into a tautology).
        target = ("SELECT likes.drinker FROM Likes likes, Serves serves "
                  "WHERE likes.beer = serves.beer AND serves.price < 3")
        submission = "SELECT likes.bar FROM Serves likes WHERE likes.price < 3"
        session = AssignmentSession(beers_catalog, target)
        result = session.grade(submission)
        direct = grade(beers_catalog, target, submission)
        assert result.final_sql == direct.final_query.to_sql()
        assert "likes.beer = likes.beer" not in result.final_sql

    def test_matches_one_shot_pipeline_output(self, beers_catalog):
        session = AssignmentSession(beers_catalog, TARGET)
        direct = format_report(grade(beers_catalog, TARGET, WRONG))
        assert session.grade(WRONG).text() == direct

    def test_equivalent_submission_passes(self, beers_catalog):
        session = AssignmentSession(beers_catalog, TARGET)
        result = session.grade("SELECT serves.beer FROM Serves WHERE 2 < price")
        assert result.all_passed
        assert "already equivalent" in result.text()

    def test_parse_error_propagates(self, beers_catalog):
        session = AssignmentSession(beers_catalog, TARGET)
        with pytest.raises(ParseError):
            session.grade("SELEKT nope")

    def test_solver_stats_are_session_deltas(self, beers_catalog):
        shared_solver_session = AssignmentSession(beers_catalog, TARGET)
        shared_solver_session.grade(WRONG)
        fresh = AssignmentSession(
            beers_catalog, TARGET, solver=shared_solver_session.solver
        )
        assert fresh.solver_stats()["sat_calls"] == 0
        fresh.grade("SELECT beer FROM Serves WHERE price >= 3")
        assert fresh.solver_stats()["sat_calls"] > 0

    def test_stats_shape(self, beers_catalog):
        session = AssignmentSession(beers_catalog, TARGET, assignment_id="hw1")
        session.grade(WRONG)
        stats = session.stats()
        assert stats["assignment_id"] == "hw1"
        assert stats["submissions"] == 1
        assert stats["pipeline_runs"] == 1
        assert 0.0 <= stats["solver"]["cache_hit_rate"] <= 1.0


class TestBatchGrading:
    @pytest.fixture(scope="class")
    def question(self):
        return next(q for q in dblp.QUESTIONS if q.qid == "Q4")

    @pytest.fixture(scope="class")
    def pool(self, question):
        return userstudy.submission_pool(question, count=30, seed=7)

    def test_batch_matches_sequential_one_shot(self, dblp_catalog, question, pool):
        sequential = [
            format_report(grade(dblp_catalog, question.correct_sql, sql))
            for sql in pool
        ]
        batch = grade_batch(
            dblp_catalog, question.correct_sql, pool, processes=2
        )
        assert [r.text() for r in batch.results] == sequential

    def test_serial_and_parallel_agree(self, dblp_catalog, question, pool):
        serial = grade_batch(
            dblp_catalog, question.correct_sql, pool, processes=1
        )
        parallel = grade_batch(
            dblp_catalog, question.correct_sql, pool, processes=2
        )
        assert [r.text() for r in serial.results] == [
            r.text() for r in parallel.results
        ]
        assert serial.unique == parallel.unique

    def test_duplicate_heavy_pool_hits_cache(self, dblp_catalog, question, pool):
        batch = grade_batch(
            dblp_catalog, question.correct_sql, pool, processes=1
        )
        assert batch.unique < len(pool) // 2
        assert batch.cache_hit_rate > 0.5
        assert batch.stats()["solver"]["sat_calls"] > 0

    def test_bad_submissions_become_grade_errors(self, dblp_catalog, question):
        pool = [question.wrong_sql, "SELEKT nope", question.wrong_sql]
        batch = grade_batch(
            dblp_catalog, question.correct_sql, pool, processes=1
        )
        assert batch.errors == 1
        assert isinstance(batch.results[1], GradeError)
        assert batch.results[1].kind == "ParseError"
        assert batch.results[0].text() == batch.results[2].text()

    def test_unrepairable_submission_does_not_abort_batch(self, beers_catalog):
        # max_sites=0 makes any needed repair unviable (RepairError); the
        # rest of the pile must still grade.
        target = "SELECT beer FROM Serves WHERE price > 2 AND bar = 'Joyce'"
        equivalent = "SELECT serves.beer FROM Serves WHERE 2 < price AND bar = 'Joyce'"
        unrepairable = "SELECT beer FROM Serves WHERE price < 1 OR bar = 'Moe'"
        for processes in (1, 2):
            batch = grade_batch(
                beers_catalog,
                target,
                [equivalent, unrepairable, equivalent],
                processes=processes,
                max_sites=0,
            )
            assert batch.errors == 1
            assert isinstance(batch.results[1], GradeError)
            assert batch.results[1].kind == "RepairError"
            assert batch.results[0].all_passed and batch.results[2].all_passed

    def test_hit_rate_stays_sane_when_unique_forms_fail(self, beers_catalog):
        target = "SELECT beer FROM Serves WHERE price > 2 AND bar = 'Joyce'"
        equivalent = "SELECT serves.beer FROM Serves WHERE 2 < price AND bar = 'Joyce'"
        pool = [
            equivalent,
            "SELECT beer FROM Serves WHERE price < 1 OR bar = 'Moe'",
            "SELECT beer FROM Serves WHERE price < 1 OR bar = 'Zed'",
            equivalent,
        ]
        batch = grade_batch(
            beers_catalog, target, pool, processes=1, max_sites=0
        )
        assert batch.unique == 3 and batch.unique_failed == 2
        assert batch.errors == 2
        # 2 graded submissions over 1 successful form -> 50%, never negative.
        assert batch.cache_hit_rate == 0.5

    def test_format_variant_preserves_multiword_literals(self):
        from repro.workloads.userstudy import _format_variant
        import random

        sql = "SELECT t.a FROM T t WHERE t.city = 'New York'  AND t.a > 1"
        for seed in range(20):
            assert "'New York'" in _format_variant(sql, random.Random(seed))


class _Client:
    def __init__(self, base):
        self.base = base

    def post(self, path, payload):
        request = urllib.request.Request(
            self.base + path,
            json.dumps(payload).encode(),
            {"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def get(self, path):
        try:
            with urllib.request.urlopen(self.base + path) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())


@pytest.fixture()
def client():
    server = make_server(port=0)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield _Client(f"http://{host}:{port}")
    finally:
        server.shutdown()
        server.server_close()


SCHEMA = {"Serves": [["bar", "STRING"], ["beer", "STRING"], ["price", "FLOAT"]]}


class TestHttpServer:
    def _create(self, client, **extra):
        return client.post(
            "/assignments",
            {"schema": SCHEMA, "target_sql": TARGET, **extra},
        )

    def test_create_and_grade(self, client):
        status, created = self._create(client)
        assert status == 201
        aid = created["assignment_id"]
        status, body = client.post("/grade", {"assignment_id": aid, "sql": WRONG})
        assert status == 200
        assert not body["all_passed"]
        assert any(s["stage"] == "WHERE" and s["hints"] for s in body["stages"])
        assert "[WHERE]" in body["text"]

    def test_cache_hit_on_duplicate(self, client):
        _, created = self._create(client)
        aid = created["assignment_id"]
        _, first = client.post("/grade", {"assignment_id": aid, "sql": WRONG})
        _, second = client.post(
            "/grade",
            {"assignment_id": aid, "sql": "select beer  from Serves where price >= 2"},
        )
        assert not first["cached"] and second["cached"]
        assert first["text"] == second["text"]

    def test_unknown_assignment_404(self, client):
        status, body = client.post(
            "/grade", {"assignment_id": "nope", "sql": WRONG}
        )
        assert status == 404 and "error" in body

    def test_parse_error_400(self, client):
        _, created = self._create(client)
        status, body = client.post(
            "/grade",
            {"assignment_id": created["assignment_id"], "sql": "SELEKT"},
        )
        assert status == 400 and body["kind"] == "ParseError"

    def test_duplicate_assignment_id_409(self, client):
        assert self._create(client, assignment_id="hw")[0] == 201
        assert self._create(client, assignment_id="hw")[0] == 409

    def test_malformed_schema_400_not_500(self, client):
        status, body = client.post(
            "/assignments",
            {"schema": {"Serves": [["beer", "str"]]}, "target_sql": TARGET},
        )
        assert status == 400 and "invalid schema" in body["error"]
        status, _ = client.post(
            "/assignments", {"schema": {"Serves": "oops"}, "target_sql": TARGET}
        )
        assert status == 400

    def test_bad_json_400(self, client):
        request = urllib.request.Request(
            client.base + "/grade", b"not json", {"Content-Type": "application/json"}
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_stats_endpoint(self, client):
        _, created = self._create(client)
        aid = created["assignment_id"]
        client.post("/grade", {"assignment_id": aid, "sql": WRONG})
        client.post("/grade", {"assignment_id": aid, "sql": WRONG})
        status, stats = client.get("/stats")
        assert status == 200
        entry = stats["assignments"][aid]
        assert entry["submissions"] == 2
        assert entry["cache"]["hits"] == 1

    def test_stats_endpoint_reports_cdcl_counters(self, client):
        _, created = self._create(client)
        aid = created["assignment_id"]
        client.post("/grade", {"assignment_id": aid, "sql": WRONG})
        _, stats = client.get("/stats")
        solver_stats = stats["assignments"][aid]["solver"]
        for key in ("restarts", "clauses_deleted", "literals_minimized",
                    "theory_cache_hits", "learned_clauses"):
            assert key in solver_stats, key

    def test_keep_alive_survives_404_with_body(self, client):
        # A 404 must drain the unread body or the next request on the
        # persistent connection is parsed out of the leftover bytes.
        import http.client
        from urllib.parse import urlsplit

        netloc = urlsplit(client.base).netloc
        conn = http.client.HTTPConnection(netloc, timeout=5)
        try:
            conn.request(
                "POST", "/nope", body=b'{"x": 1}',
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            assert resp.status == 404
            resp.read()
            conn.request("GET", "/healthz")
            resp = conn.getresponse()
            assert resp.status == 200
            assert json.loads(resp.read()) == {"ok": True}
        finally:
            conn.close()

    def test_concurrent_grades_are_consistent(self, client):
        _, created = self._create(client)
        aid = created["assignment_id"]
        submissions = [WRONG, "select beer from serves where PRICE >= 2"] * 8

        def hit(sql):
            return client.post("/grade", {"assignment_id": aid, "sql": sql})

        with ThreadPoolExecutor(max_workers=8) as pool:
            responses = list(pool.map(hit, submissions))
        assert all(status == 200 for status, _ in responses)
        texts = {body["text"] for _, body in responses}
        assert len(texts) == 1  # every duplicate got the identical hint block
        _, stats = client.get("/stats")
        entry = stats["assignments"][aid]
        assert entry["submissions"] == len(submissions)
        assert entry["pipeline_runs"] == 1  # one solve, 15 cache serves


def _get_text(client, path):
    """Fetch ``path`` raw (``_Client.get`` JSON-decodes the body)."""
    with urllib.request.urlopen(client.base + path) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read().decode()


def _scrape(client):
    from repro.obs import parse_prometheus_text

    status, content_type, text = _get_text(client, "/metrics")
    assert status == 200
    assert content_type.startswith("text/plain")
    return parse_prometheus_text(text)


def _counter(families, name, **labels):
    family = families.get(name)
    if family is None:
        return 0.0
    for sample_name, sample_labels, value in family["samples"]:
        if sample_name == name and sample_labels == labels:
            return value
    return 0.0


class TestMetricsEndpoint:
    def _create(self, client):
        return client.post(
            "/assignments", {"schema": SCHEMA, "target_sql": TARGET}
        )

    def test_metrics_is_valid_prometheus_text(self, client):
        _, created = self._create(client)
        aid = created["assignment_id"]
        client.post("/grade", {"assignment_id": aid, "sql": WRONG})
        families = _scrape(client)
        # Request-latency histogram, cache and solver counters all expose.
        assert families["repro_http_request_seconds"]["kind"] == "histogram"
        assert families["repro_cache_hits_total"]["kind"] == "counter"
        assert families["repro_cache_misses_total"]["kind"] == "counter"
        assert families["repro_solver_sat_calls_total"]["kind"] == "counter"
        assert families["repro_grades_total"]["kind"] == "counter"
        assert families["repro_stage_seconds"]["kind"] == "histogram"
        assert (
            _counter(
                families, "repro_session_submissions_total", assignment=aid
            )
            >= 1
        )

    def test_bad_json_increments_error_counter(self, client):
        before = _scrape(client)
        request = urllib.request.Request(
            client.base + "/grade", b"not json",
            {"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400
        excinfo.value.read()
        after = _scrape(client)
        key = {"route": "/grade", "status": "400"}
        assert (
            _counter(after, "repro_http_errors_total", **key)
            == _counter(before, "repro_http_errors_total", **key) + 1
        )

    def test_unknown_route_increments_error_counter(self, client):
        # Unknown paths collapse to the "other" route label so a URL
        # scanner cannot blow up metric cardinality.
        before = _scrape(client)
        status, body = client.get("/definitely-not-a-route")
        assert status == 404 and "error" in body
        after = _scrape(client)
        key = {"route": "other", "status": "404"}
        assert (
            _counter(after, "repro_http_errors_total", **key)
            == _counter(before, "repro_http_errors_total", **key) + 1
        )

    def test_oversized_body_413_increments_error_counter(self, client):
        import http.client
        from urllib.parse import urlsplit

        before = _scrape(client)
        netloc = urlsplit(client.base).netloc
        conn = http.client.HTTPConnection(netloc, timeout=5)
        try:
            # Announce an oversized body without sending it: the server
            # must reject from Content-Length alone, before reading.
            conn.putrequest("POST", "/grade")
            conn.putheader("Content-Type", "application/json")
            conn.putheader("Content-Length", str(2_000_000))
            conn.endheaders()
            resp = conn.getresponse()
            assert resp.status == 413
            resp.read()
        finally:
            conn.close()
        after = _scrape(client)
        key = {"route": "/grade", "status": "413"}
        assert (
            _counter(after, "repro_http_errors_total", **key)
            == _counter(before, "repro_http_errors_total", **key) + 1
        )

    def test_http_stats_block(self, client):
        client.get("/healthz")
        status, stats = client.get("/stats")
        assert status == 200
        http_block = stats["http"]
        assert http_block["requests"]["/healthz"]["200"] >= 1
        latency = http_block["latency"]["/healthz"]
        assert latency["count"] >= 1
        assert latency["p95_ms"] >= 0.0

    def test_traced_grade_returns_span_tree(self, client):
        _, created = self._create(client)
        aid = created["assignment_id"]
        status, body = client.post(
            "/grade",
            {"assignment_id": aid, "sql": WRONG, "trace": True},
        )
        assert status == 200
        trace = body["trace"]
        names = [span["name"] for span in trace["spans"]]
        for expected in (
            "grade", "session.grade", "cache.get", "pipeline.run",
            "stage.FROM", "stage.WHERE", "stage.SELECT", "solver.solve",
        ):
            assert expected in names, expected
        # Untraced requests stay lean: no trace key at all.
        _, plain = client.post(
            "/grade", {"assignment_id": aid, "sql": WRONG}
        )
        assert "trace" not in plain


class TestCliSubcommands:
    @pytest.fixture()
    def schema_file(self, tmp_path):
        path = tmp_path / "schema.json"
        path.write_text(json.dumps(SCHEMA))
        return str(path)

    def test_grade_batch_from_file(self, schema_file, tmp_path, capsys):
        from repro.cli import main

        subs = tmp_path / "subs.json"
        subs.write_text(json.dumps([WRONG, WRONG, "SELEKT nope"]))
        out_path = tmp_path / "out.json"
        code = main(
            [
                "grade-batch",
                "--schema", schema_file,
                "--target-sql", TARGET,
                "--submissions", str(subs),
                "--processes", "1",
                "--json", str(out_path),
            ]
        )
        assert code == 0
        assert "2 unique" not in capsys.readouterr().out  # 1 unique + 1 error
        payload = json.loads(out_path.read_text())
        assert payload["stats"]["submissions"] == 3
        assert payload["stats"]["errors"] == 1
        assert payload["results"][0]["stages"]
        assert payload["results"][2]["kind"] == "ParseError"

    def test_grade_batch_bad_submissions_file_exits_2(
        self, schema_file, tmp_path, capsys
    ):
        from repro.cli import main

        subs = tmp_path / "subs.json"
        subs.write_text(json.dumps([{"nope": 1}]))
        code = main(
            [
                "grade-batch",
                "--schema", schema_file,
                "--target-sql", TARGET,
                "--submissions", str(subs),
            ]
        )
        assert code == 2  # input error, not a verification failure (1)
        assert "unsupported submission entry" in capsys.readouterr().err

    def test_grade_batch_userstudy_workload(self, capsys):
        from repro.cli import main

        code = main(
            [
                "grade-batch",
                "--workload", "userstudy",
                "--question", "Q4",
                "--count", "12",
                "--processes", "1",
            ]
        )
        assert code == 0
        assert "Graded 12 submissions" in capsys.readouterr().out

    def test_usage_errors_exit_2_not_1(self, schema_file, tmp_path, capsys):
        from repro.cli import main

        # missing --working entirely: a usage error, not a verify failure
        code = main(["--schema", schema_file, "--target-sql", TARGET])
        assert code == 2
        # schema file with a bad column type: error message, not traceback
        bad_schema = tmp_path / "bad.json"
        bad_schema.write_text(json.dumps({"Serves": [["beer", "str"]]}))
        code = main(
            [
                "--schema", str(bad_schema),
                "--target-sql", TARGET,
                "--working-sql", WRONG,
            ]
        )
        assert code == 2
        assert "invalid schema" in capsys.readouterr().err

    def test_serve_preload_parse_error_exits_2(self, schema_file, capsys):
        from repro.cli import main

        code = main(
            [
                "serve",
                "--schema", schema_file,
                "--target-sql", "SELEKT x",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_verify_failure_exit_code_and_single_stats_block(
        self, schema_file, capsys, monkeypatch
    ):
        import repro.cli as cli

        monkeypatch.setattr(cli, "appear_equivalent", lambda *a, **k: False)
        code = cli.main(
            [
                "--schema", schema_file,
                "--target-sql", TARGET,
                "--working-sql", WRONG,
                "--verify",
                "--solver-stats",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1  # verification failure, distinct from parse error (2)
        assert "FAIL" in out
        assert out.count("Solver stats:") == 1
        assert "cache_hit_rate" in out

    def test_solver_stats_include_cdcl_counters(self, schema_file, capsys):
        import repro.cli as cli

        code = cli.main(
            [
                "--schema", schema_file,
                "--target-sql", TARGET,
                "--working-sql", WRONG,
                "--solver-stats",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        for key in ("restarts", "clauses_deleted", "literals_minimized",
                    "theory_cache_hits"):
            assert key in out, key


class TestCacheDiskSpill:
    def test_round_trip_preserves_entries_and_order(self, tmp_path,
                                                    beers_catalog):
        session = AssignmentSession(beers_catalog, TARGET)
        session.grade(WRONG)
        session.grade("SELECT beer FROM Serves WHERE price > 3")
        path = tmp_path / "cache.json"
        saved = session.cache.save(str(path))
        assert saved == 2
        restored = ArtifactCache()
        assert restored.load(str(path)) == 2
        assert list(restored._entries) == list(session.cache._entries)

    def test_restored_cache_serves_without_pipeline_runs(self, tmp_path,
                                                         beers_catalog):
        warm = AssignmentSession(beers_catalog, TARGET)
        first = warm.grade(WRONG, witness=True)
        path = tmp_path / "cache.json"
        warm.cache.save(str(path))

        cold = AssignmentSession(beers_catalog, TARGET)
        cold.cache.load(str(path))
        second = cold.grade(WRONG, witness=True)
        assert second.cached
        assert cold.pipeline_runs == 0
        assert cold.witness_runs == 0
        assert first.text(show_fixes=True) == second.text(show_fixes=True)
        assert first.to_dict()["stages"] == second.to_dict()["stages"]
        assert (witness_to_dict(first.witness)
                == witness_to_dict(second.witness))

    def test_negative_witness_sentinel_round_trips(self, tmp_path,
                                                   beers_catalog):
        session = AssignmentSession(beers_catalog, TARGET)
        canonical, _ = session.prepare(WRONG)
        session.cache.put(("witness", canonical), "__no_witness__")
        path = tmp_path / "cache.json"
        session.cache.save(str(path))
        restored = ArtifactCache()
        restored.load(str(path))
        assert restored.get(("witness", canonical)) == "__no_witness__"

    def test_unknown_artifacts_skipped_not_fatal(self, tmp_path,
                                                 beers_catalog):
        session = AssignmentSession(beers_catalog, TARGET)
        session.grade(WRONG)
        canonical, _ = session.prepare(WRONG)
        session.cache.put(("mystery", canonical), object())
        path = tmp_path / "cache.json"
        assert session.cache.save(str(path)) == 1  # the report alone

    def test_restored_alpha_equivalent_submission_hits(self, tmp_path,
                                                       beers_catalog):
        warm = AssignmentSession(beers_catalog, TARGET)
        warm.grade(WRONG)
        path = tmp_path / "cache.json"
        warm.cache.save(str(path))
        cold = AssignmentSession(beers_catalog, TARGET)
        cold.cache.load(str(path))
        result = cold.grade(
            "select S.beer from Serves s WHERE s.price >= 2"
        )
        assert result.cached and cold.pipeline_runs == 0


class TestWitnessFanout:
    """Witness construction sharded over the batch worker pool."""

    @pytest.fixture(scope="class")
    def question(self):
        return next(q for q in dblp.QUESTIONS if q.qid == "Q4")

    @pytest.fixture(scope="class")
    def pool(self, question):
        return userstudy.submission_pool(question, count=24, seed=3)

    def test_parallel_witnesses_match_serial(
        self, dblp_catalog, question, pool
    ):
        # Witnesses are deterministic per seed, so the sharded run must
        # reproduce the serial one exactly.  (`Witness.elapsed` is
        # compare=False, so == already ignores wall-clock noise.)
        serial = grade_batch(
            dblp_catalog, question.correct_sql, pool,
            processes=1, witness=True,
        )
        parallel = grade_batch(
            dblp_catalog, question.correct_sql, pool,
            processes=2, witness=True,
        )
        assert [r.text() for r in serial.results] == [
            r.text() for r in parallel.results
        ]
        witnessed = 0
        for left, right in zip(serial.results, parallel.results):
            assert left.witness == right.witness
            if left.witness is not None:
                witnessed += 1
        assert witnessed > 0, "pool produced no witnessed failures"

    def test_parallel_run_seeds_parent_witness_cache(
        self, dblp_catalog, question, pool
    ):
        # The serve loop must be fed from worker-built witness entries,
        # not regenerate them: every wrong form's witness slot is already
        # in the parent cache when grade_batch returns.
        session = AssignmentSession(
            dblp_catalog, question.correct_sql, cache_size=256
        )
        batch = grade_batch(
            dblp_catalog, question.correct_sql, pool,
            processes=2, witness=True, session=session,
        )
        for result in batch.results:
            if isinstance(result, GradeError) or result.all_passed:
                continue
            canonical, _ = session.prepare(result.submission_sql)
            assert ("witness", canonical) in session.cache


class TestCacheSpiller:
    def _loaded_keys(self, path):
        return ArtifactCache(maxsize=64).load(path)

    def test_rejects_nonpositive_interval(self, tmp_path, beers_catalog):
        from repro.service.server import CacheSpiller

        session = AssignmentSession(beers_catalog, TARGET)
        with pytest.raises(ValueError):
            CacheSpiller(session.cache, str(tmp_path / "c.json"), 0)

    def test_spill_skips_clean_writes_dirty(self, tmp_path, beers_catalog):
        from repro.service.server import CacheSpiller

        session = AssignmentSession(beers_catalog, TARGET)
        path = tmp_path / "cache.json"
        spiller = CacheSpiller(session.cache, str(path), interval=3600)
        # Clean cache: nothing written, file untouched.
        assert spiller.spill() == 0
        assert not path.exists()
        session.grade(WRONG)
        written = spiller.spill()
        assert written >= 1 and spiller.spills == 1
        assert self._loaded_keys(str(path)) == written
        # Unchanged since the last spill: skipped again.
        assert spiller.spill() == 0 and spiller.spills == 1
        # A fresh mutation re-arms it.
        session.grade(TARGET)
        assert spiller.spill() > 0 and spiller.spills == 2

    def test_background_thread_spills_and_stops(
        self, tmp_path, beers_catalog
    ):
        import time

        from repro.service.server import CacheSpiller

        session = AssignmentSession(beers_catalog, TARGET)
        path = tmp_path / "cache.json"
        spiller = CacheSpiller(session.cache, str(path), interval=0.05)
        spiller.start()
        try:
            session.grade(WRONG)  # dirty the cache after the thread is up
            deadline = time.time() + 5
            while spiller.spills == 0 and time.time() < deadline:
                time.sleep(0.02)
        finally:
            spiller.stop()
        assert spiller.spills >= 1
        assert self._loaded_keys(str(path)) >= 1
        # After stop, no further spills happen even if the cache moves.
        spills = spiller.spills
        session.grade(TARGET)
        time.sleep(0.15)
        assert spiller.spills == spills

    def test_stop_flushes_final_spill(self, tmp_path, beers_catalog):
        # Regression: mutations landing between the last periodic tick
        # and shutdown used to be lost; stop() must flush them.
        from repro.service.server import CacheSpiller

        session = AssignmentSession(beers_catalog, TARGET)
        path = tmp_path / "cache.json"
        # Interval far beyond the test: the background thread never ticks,
        # so anything on disk afterwards came from stop() itself.
        spiller = CacheSpiller(session.cache, str(path), interval=3600)
        spiller.start()
        session.grade(WRONG)
        spiller.stop()
        assert spiller.spills == 1
        assert path.exists()
        assert self._loaded_keys(str(path)) >= 1


class TestWitnessText:
    def test_default_rendering_unchanged(self, beers_catalog):
        session = AssignmentSession(beers_catalog, TARGET)
        plain = session.grade(WRONG)
        with_witness = session.grade(WRONG, witness=True)
        # The flag is off: no divergence sentence anywhere.
        assert "On this database" not in plain.text()
        assert "On this database" not in with_witness.text()

    def test_flag_appends_divergence_sentence(self, beers_catalog):
        session = AssignmentSession(beers_catalog, TARGET)
        result = session.grade(WRONG, witness=True)
        text = result.text(witness_text=True)
        assert "On this database your query returns" in text
        assert "; the reference returns" in text
        # The sentence is anchored to the failing stage block.
        where_block = text.split("[WHERE]")[1]
        assert "On this database" in where_block

    def test_flag_without_witness_is_noop(self, beers_catalog):
        session = AssignmentSession(beers_catalog, TARGET)
        result = session.grade(WRONG)
        assert result.text(witness_text=True) == result.text()

    def test_http_grade_witness_text(self, client):
        _, created = client.post(
            "/assignments", {"schema": SCHEMA, "target_sql": TARGET}
        )
        aid = created["assignment_id"]
        _, body = client.post(
            "/grade",
            {"assignment_id": aid, "sql": WRONG, "witness_text": True},
        )
        assert "On this database your query returns" in body["text"]
        assert body["witness"]  # witness_text implies witness generation
        _, plain = client.post(
            "/grade", {"assignment_id": aid, "sql": WRONG}
        )
        assert "On this database" not in plain["text"]

    @pytest.fixture()
    def schema_file(self, tmp_path):
        path = tmp_path / "schema.json"
        path.write_text(json.dumps(SCHEMA))
        return str(path)

    def test_cli_hint_witness_text(self, schema_file, capsys):
        from repro.cli import main

        code = main(
            [
                "hint",
                "--schema", schema_file,
                "--target-sql", TARGET,
                "--working-sql", WRONG,
                "--witness-text",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "On this database your query returns" in out
        assert "Counterexample instance" in out


class TestRouteCardinality:
    def test_bounded_route_passes_known_and_collapses_unknown(self):
        from repro.service.server import KNOWN_ROUTES, bounded_route

        for route in KNOWN_ROUTES:
            assert bounded_route(route) == route
        assert bounded_route("/etc/passwd") == "other"
        assert bounded_route("/grade/../admin") == "other"
        # Query strings are stripped before the bound check.
        assert bounded_route("/stats?verbose=1") == "/stats"
        assert bounded_route("/debug/journal?n=50") == "/debug/journal"

    def test_scanned_paths_never_become_labels(self, client):
        scans = ("/wp-admin.php", "/grade/extra", "/x?probe=1")
        for path in scans:
            status, _ = client.get(path)
            assert status == 404
        status, _, text = _get_text(client, "/metrics")
        assert status == 200
        for path in scans:
            assert path.split("?", 1)[0] not in text
        assert 'route="other"' in text


class TestHttpEffort:
    def _grade(self, client, **extra):
        _, created = client.post(
            "/assignments", {"schema": SCHEMA, "target_sql": TARGET}
        )
        return client.post("/grade", {
            "assignment_id": created["assignment_id"],
            "sql": WRONG,
            **extra,
        })

    def test_effort_absent_by_default(self, client):
        status, body = self._grade(client)
        assert status == 200
        assert "effort" not in body

    def test_effort_opt_in_returns_counters(self, client):
        status, body = self._grade(client, effort=True)
        assert status == 200
        assert body["effort"]["sat_calls"] >= 1
        assert all(isinstance(v, int) for v in body["effort"].values())

    def test_route_effort_metrics_always_aggregate(self, client):
        before = _scrape(client)
        key = {"route": "/grade", "counter": "sat_calls"}
        self._grade(client)  # no effort opt-in on the request
        after = _scrape(client)
        assert (
            _counter(after, "repro_solver_effort_total", **key)
            > _counter(before, "repro_solver_effort_total", **key)
        )


class TestStatsSpill:
    def test_stats_reports_spill_block_when_spilling(self, tmp_path):
        from repro.service.server import CacheSpiller, HintService

        service = HintService()
        server = make_server(port=0, service=service)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = _Client(f"http://{host}:{port}")
        try:
            _, created = client.post(
                "/assignments", {"schema": SCHEMA, "target_sql": TARGET}
            )
            aid = created["assignment_id"]
            # No spiller configured: no spill block.
            _, stats = client.get("/stats")
            assert "spill" not in stats

            session = service.session(aid)
            spiller = CacheSpiller(
                session.cache, str(tmp_path / "cache.json"), interval=3600
            )
            server.spiller = spiller
            client.post("/grade", {"assignment_id": aid, "sql": WRONG})
            spiller.spill()
            spiller.spill()  # idle: cache unchanged since the last one
            _, stats = client.get("/stats")
            spill = stats["spill"]
            assert spill["count"] == 1
            assert spill["skipped_idle"] == 1
            assert spill["last_entries"] >= 1
            assert spill["last_bytes"] > 0
            assert spill["last_duration_ms"] >= 0
            assert spill["interval"] == 3600
        finally:
            server.shutdown()
            server.server_close()

    def test_spiller_journals_lifecycle_events(self, tmp_path, beers_catalog):
        from repro.obs import JOURNAL
        from repro.service.server import CacheSpiller

        session = AssignmentSession(beers_catalog, TARGET)
        path = tmp_path / "cache.json"
        spiller = CacheSpiller(session.cache, str(path), interval=3600)
        session.grade(WRONG)
        JOURNAL.clear()
        spiller.spill()
        spiller.spill()
        events = {e["kind"]: e for e in JOURNAL.tail()}
        assert events["spill.start"]["size"] >= 1
        end = events["spill.end"]
        assert end["entries"] == spiller.last_entries
        assert end["bytes"] == path.stat().st_size
        assert end["duration_ms"] >= 0
        assert events["spill.idle"]["skipped"] == 1
