"""Tests for DeriveFixes (Algorithm 3) and MinFixMult (Algorithms 7/8)."""

import pytest

from repro.core.bounds import bounds_admit, create_bounds
from repro.core.derive_fixes import derive_fixes, distribute_fixes
from repro.core.derive_opt import min_fix_mult
from repro.errors import RepairError
from repro.logic.formulas import Comparison, FALSE, Not, TRUE, conj, disj
from repro.logic.paths import replace_at
from repro.logic.terms import const, intvar

A, B, C, D, E, F = (intvar(x) for x in "ABCDEF")


def cmp(op, lhs, rhs):
    return Comparison(op, lhs, rhs)


def example5():
    p_star = (cmp("=", A, C) & (cmp("<", E, const(5)) | cmp(">", D, const(10)) | cmp("<", D, const(7)))) | (
        cmp("=", A, B) & (cmp("<>", D, E) | cmp(">", D, F))
    )
    p = (cmp("=", A, C) & (cmp("<>", D, E) | cmp(">", D, F))) | (
        cmp("=", A, C)
        & (cmp(">", D, const(11)) | cmp("<", D, const(7)) | cmp("<=", E, const(5)))
    )
    return p, p_star


def apply_and_check(solver, predicate, fixes, target):
    repaired = replace_at(predicate, fixes)
    assert solver.is_equiv(repaired, target), f"{repaired} != {target}"


class TestDeriveFixes:
    def test_root_site(self, solver):
        p, p_star = example5()
        fixes = derive_fixes(p, [()], p_star, solver)
        apply_and_check(solver, p, fixes, p_star)

    def test_single_atom_site(self, solver):
        # Fix A>5 in (A>5 and B=1) toward (A>=5 and B=1).
        p = cmp(">", A, const(5)) & cmp("=", B, const(1))
        p_star = cmp(">=", A, const(5)) & cmp("=", B, const(1))
        fixes = derive_fixes(p, [(0,)], p_star, solver)
        apply_and_check(solver, p, fixes, p_star)
        # The fix should be a single atom (optimal per Lemma 5.2).
        assert fixes[(0,)].size() == 1

    def test_sites_under_not(self, solver):
        p = Not(cmp(">", A, const(5)) | cmp("=", B, const(1)))
        p_star = Not(cmp(">", A, const(7)) | cmp("=", B, const(1)))
        fixes = derive_fixes(p, [(0, 0)], p_star, solver)
        apply_and_check(solver, p, fixes, p_star)

    def test_example5_three_sites_correct(self, solver):
        # Sites {x4, x10, x12}: DeriveFixes yields a correct (if suboptimal)
        # repair, per paper Example 8.
        p, p_star = example5()
        sites = [(0, 0), (1, 1, 0), (1, 1, 2)]
        lower, upper = create_bounds(p, sites)
        assert bounds_admit(solver, lower, p_star, upper)
        fixes = derive_fixes(p, sites, p_star, solver)
        apply_and_check(solver, p, fixes, p_star)

    def test_sibling_sites_merged_and_distributed(self, solver):
        # Two sites under the same OR parent (paper: handled as one site).
        p = disj(cmp("=", A, const(1)), cmp("=", B, const(2)), cmp("=", C, const(3)))
        p_star = disj(
            cmp("=", A, const(1)), cmp("=", B, const(5)), cmp("=", C, const(9))
        )
        sites = [(1,), (2,)]
        fixes = derive_fixes(p, sites, p_star, solver)
        assert set(fixes) == {(1,), (2,)}
        apply_and_check(solver, p, fixes, p_star)

    def test_conjunctive_sibling_sites(self, solver):
        p = conj(cmp("=", A, const(1)), cmp("=", B, const(2)), cmp("=", C, const(3)))
        p_star = conj(
            cmp("=", A, const(1)), cmp(">", B, const(5)), cmp("<", C, const(9))
        )
        fixes = derive_fixes(p, [(1,), (2,)], p_star, solver)
        apply_and_check(solver, p, fixes, p_star)

    def test_no_sites_returns_empty(self, solver):
        p, _ = example5()
        assert derive_fixes(p, [], p, solver) == {}


class TestDistributeFixes:
    def test_single_site_gets_whole_fix(self):
        fix = cmp("=", A, const(1)) | cmp("=", B, const(2))
        out = distribute_fixes(fix, {1: cmp("=", A, const(9))}, is_and=False)
        assert out == {1: fix}

    def test_clauses_follow_similarity(self):
        fix = disj(cmp("=", A, const(1)), cmp("=", B, const(2)))
        originals = {0: cmp("=", A, const(7)), 1: cmp("=", B, const(9))}
        out = distribute_fixes(fix, originals, is_and=False)
        assert out[0] == cmp("=", A, const(1))
        assert out[1] == cmp("=", B, const(2))

    def test_unmatched_sites_get_neutral_element(self):
        fix = cmp("=", A, const(1))
        originals = {0: cmp("=", A, const(7)), 1: cmp("=", B, const(9))}
        out = distribute_fixes(fix, originals, is_and=False)
        assert out[1] == FALSE  # neutral for OR
        out_and = distribute_fixes(fix, originals, is_and=True)
        assert out_and[1] == TRUE  # neutral for AND

    def test_union_of_distributed_equals_fix(self, solver):
        fix = disj(
            cmp("=", A, const(1)), cmp("=", B, const(2)), cmp("=", C, const(3))
        )
        originals = {0: cmp("=", A, const(0)), 1: cmp("=", C, const(0))}
        out = distribute_fixes(fix, originals, is_and=False)
        assert solver.is_equiv(disj(*out.values()), fix)


class TestMinFixMult:
    def test_example5_optimal_fixes(self, solver):
        # Appendix C.2: DeriveFixesOPT finds A=B / D>10 / E<5 (or the
        # equivalent 2-site split); fixes must be correct and small.
        p, p_star = example5()
        sites = [(0, 0), (1, 1, 0), (1, 1, 2)]
        fixes = min_fix_mult(p, sites, p_star, p_star, solver)
        apply_and_check(solver, p, fixes, p_star)
        total_fix_size = sum(f.size() for f in fixes.values())
        assert total_fix_size <= 3  # the optimal fixes are three atoms

    def test_paper_example_15_17(self, solver):
        # P* = a=1 or (b=2 and c=3); P = c=3 or (b=2 and a=1);
        # repair sites are the atoms c=3 and a=1; optimal fixes swap them.
        a1 = cmp("=", A, const(1))
        b2 = cmp("=", B, const(2))
        c3 = cmp("=", C, const(3))
        p_star = disj(a1, conj(b2, c3))
        p = disj(c3, conj(b2, a1))
        fixes = min_fix_mult(p, [(0,), (1, 1)], p_star, p_star, solver)
        apply_and_check(solver, p, fixes, p_star)
        assert fixes[(0,)].size() == 1
        assert fixes[(1, 1)].size() == 1

    def test_single_site_matches_derive_fixes(self, solver):
        p = cmp(">", A, const(5)) & cmp("=", B, const(1))
        p_star = cmp(">=", A, const(5)) & cmp("=", B, const(1))
        fixes = min_fix_mult(p, [(0,)], p_star, p_star, solver)
        apply_and_check(solver, p, fixes, p_star)

    def test_inviable_sites_raise(self, solver):
        p = conj(cmp("=", A, const(1)), cmp("=", B, const(2)))
        p_star = disj(cmp("=", A, const(5)), cmp("=", C, const(1)))
        with pytest.raises(RepairError):
            min_fix_mult(p, [(0,)], p_star, p_star, solver)
