"""Tests for repro.logic.evaluate and repro.logic.substitute."""

from fractions import Fraction

import pytest

from repro.logic.evaluate import EvaluationError, eval_formula, eval_term, sql_like
from repro.logic.formulas import Comparison, FALSE, TRUE, conj, disj, neg
from repro.logic.substitute import instantiate, rename_variables, substitute
from repro.logic.terms import AggCall, add, const, div, intvar, mul, strvar


class TestSqlLike:
    def test_percent_wildcard(self):
        assert sql_like("Eve", "Eve%")
        assert sql_like("Evelyn", "Eve%")
        assert not sql_like("Adam", "Eve%")

    def test_underscore_wildcard(self):
        assert sql_like("cat", "c_t")
        assert not sql_like("cart", "c_t")

    def test_literal_match(self):
        assert sql_like("abc", "abc")
        assert not sql_like("abc", "abd")

    def test_regex_metachars_escaped(self):
        assert sql_like("a.b", "a.b")
        assert not sql_like("axb", "a.b")

    def test_percent_matches_empty(self):
        assert sql_like("", "%")


class TestEvalTerm:
    def test_arithmetic(self):
        env = {"x": Fraction(4), "y": Fraction(2)}
        term = add(mul(intvar("x"), intvar("y")), const(1))
        assert eval_term(term, env) == 9

    def test_division_fraction(self):
        env = {"x": Fraction(1)}
        assert eval_term(div(intvar("x"), const(2)), env) == Fraction(1, 2)

    def test_division_by_zero(self):
        with pytest.raises(EvaluationError):
            eval_term(div(const(1), const(0)), {})

    def test_unbound_variable(self):
        with pytest.raises(EvaluationError):
            eval_term(intvar("nope"), {})

    def test_aggregate_from_env(self):
        agg = AggCall("COUNT", None)
        assert eval_term(agg, {"COUNT(*)": Fraction(3)}) == 3


class TestEvalFormula:
    def test_comparisons(self):
        env = {"x": Fraction(3)}
        x = intvar("x")
        assert eval_formula(Comparison("<", x, const(5)), env)
        assert not eval_formula(Comparison(">", x, const(5)), env)
        assert eval_formula(Comparison("<>", x, const(5)), env)

    def test_like_on_strings(self):
        env = {"s": "Eve"}
        assert eval_formula(Comparison("LIKE", strvar("s"), const("E%")), env)
        assert eval_formula(Comparison("NOT LIKE", strvar("s"), const("A%")), env)

    def test_connectives(self):
        env = {"x": Fraction(1)}
        x = intvar("x")
        t = Comparison("=", x, const(1))
        f = Comparison("=", x, const(2))
        assert eval_formula(conj(t, neg(f)), env)
        assert eval_formula(disj(f, t), env)
        assert not eval_formula(conj(t, f), env)

    def test_constants(self):
        assert eval_formula(TRUE, {})
        assert not eval_formula(FALSE, {})


class TestSubstitute:
    def test_var_to_const(self):
        x = intvar("x")
        formula = Comparison("<", x, const(5))
        result = substitute(formula, {x: const(3)})
        assert eval_formula(result, {})

    def test_substitution_inside_aggregate(self):
        x = intvar("x")
        agg = AggCall("SUM", mul(x, const(2)))
        from repro.logic.substitute import substitute_term

        replaced = substitute_term(agg, {x: intvar("y")})
        assert intvar("y") in replaced.variables()

    def test_rename_preserves_type(self):
        formula = Comparison("=", strvar("s"), const("a"))
        renamed = rename_variables(formula, {"s": "t"})
        (var,) = renamed.variables()
        assert var.name == "t"
        assert var.vtype.name == "STRING"

    def test_instantiate_suffixes_all_vars(self):
        formula = Comparison("=", intvar("x"), intvar("y"))
        inst = instantiate(formula, "#1")
        names = {v.name for v in inst.variables()}
        assert names == {"x#1", "y#1"}

    def test_instantiate_distinct_copies_differ(self):
        formula = Comparison("=", intvar("x"), const(1))
        assert instantiate(formula, "#1") != instantiate(formula, "#2")
