"""Integration: WHERE repair across all TPC-H benchmark predicates.

A condensed version of the Figure 2/3 workloads run as correctness tests:
for every TPC-H query and several seeds, injected errors must be repaired
to solver-verified equivalence (Lemma 5.1's unconditional guarantee).
"""

import pytest

from repro.core.where_repair import repair_where, verify_repair
from repro.solver import Solver
from repro.workloads import tpch
from repro.workloads.inject import inject_errors

FAST_QUERIES = [q for q in tpch.CONJUNCTIVE_QUERIES if q.num_atoms <= 7]


@pytest.mark.parametrize("query", FAST_QUERIES, ids=[q.name for q in FAST_QUERIES])
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_conjunctive_injection_repaired(query, seed):
    predicate = query.resolve().where
    injected = inject_errors(predicate, 2, seed=seed)
    solver = Solver()
    if solver.is_equiv(injected.wrong, injected.correct):
        pytest.skip("mutation was semantics-preserving")
    result = repair_where(
        injected.wrong, injected.correct, max_sites=2, solver=solver
    )
    assert result.found
    assert verify_repair(injected.wrong, injected.correct, result.repair, solver)
    assert result.cost <= injected.ground_truth_cost() + 1e-9


@pytest.mark.parametrize("seed", [7, 11])
def test_nested_single_error_optimal(seed):
    """Lemma 5.2: single-site repairs on Q7 are optimal for both variants."""
    predicate = tpch.Q7_NESTED.resolve().where
    injected = inject_errors(predicate, 1, seed=seed, allow_operator_swap=True)
    solver = Solver()
    if solver.is_equiv(injected.wrong, injected.correct):
        pytest.skip("mutation was semantics-preserving")
    for optimized in (False, True):
        result = repair_where(
            injected.wrong,
            injected.correct,
            max_sites=2,
            optimized=optimized,
            solver=solver,
        )
        assert result.found
        assert verify_repair(
            injected.wrong, injected.correct, result.repair, solver
        )
        assert result.cost <= injected.ground_truth_cost() + 1e-9


def test_full_pipeline_on_tpch_query():
    """End-to-end pipeline over a grouped TPC-H query with a WHERE error."""
    from dataclasses import replace

    from repro.core.pipeline import QrHint
    from repro.engine import appear_equivalent

    catalog = tpch.catalog()
    target = tpch.Q10.resolve(catalog)
    injected = inject_errors(target.where, 1, seed=3)
    working = replace(target, where=injected.wrong)
    report = QrHint(catalog, target, working).run()
    assert appear_equivalent(
        report.final_query, report.target_query, catalog, trials=20
    )
